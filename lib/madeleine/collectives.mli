(** Fault-tolerant collectives over virtual channels.

    Barrier, broadcast, reduce, allreduce and all-to-all, running on
    spanning trees computed from the {e physical} topology: every tree
    edge is a single fabric link taken from the channel membership
    graph, so the interior nodes are genuine gateways and partial
    reduction happens in the forwarding path — a gateway merges its
    children's contributions and ships one combined payload upward
    (the software analogue of NIC-based combining), instead of every
    leaf payload crossing the whole network to the root.

    The layer is generation-based for robustness. Every liveness
    transition the vchannel acts on — crash, restart, sentinel
    suspicion raised or cleared, Overloaded watermark edge, topology
    epoch swap — bumps a repair generation: partial aggregates of the
    old generation are abandoned, parked participants wake, a fresh
    tree is built over the survivors (an Overloaded gateway is kept
    off the spine when any alternative exists, a crashed or drained
    rank is excluded entirely), and contributions are re-sent. Within
    the generation that decides, every rank is counted at most once;
    the root's decision is journalled per collective id, and a
    restarted rank re-joining an already decided collective is
    answered from that journal — never re-opening the aggregation —
    which makes contributions exactly-once across a crash/restart
    cycle and all survivors' results bit-identical.

    Ranks must issue the same sequence of collectives (the usual MPI
    ordering contract): each rank's calls are numbered by a cursor
    that advances only on completion, so a restarted rank re-entering
    its interrupted call re-joins the same collective instance. *)

type t

exception Collective_failed of string
(** Raised only when no quorum of live ranks remains, or when repair
    attempts are exhausted without progress (a partition the sentinels
    never resolved). A plain crash among survivors above quorum is
    repaired, not raised. *)

type algo =
  | Tree  (** topology-aware spanning tree with gateway combining *)
  | Flat  (** star at the root: every contribution crosses the whole
              network individually — the measured linear baseline *)

val create :
  ?algo:algo ->
  ?fanout:int ->
  ?quorum:int ->
  ?patience:Marcel.Time.span ->
  Vchannel.t ->
  t
(** Attach a collectives layer to a vchannel. [fanout] caps the
    children per tree node (default 4); [quorum] is the minimum number
    of live ranks below which a collective fails typed (default 1);
    [patience] bounds how long a participant parks before forcing a
    repair generation (default {!Config.default_route_patience}).
    Installs the vchannel's [col] handler and health-change hook; one
    layer per vchannel. Creation is passive — no thread runs and no
    packet moves until a collective is called, so a vchannel without a
    layer (clusterfile [coll=] unset) behaves byte-identically to one
    that never had the code. Raises [Invalid_argument] when [fanout]
    or [quorum] is less than 1. *)

val barrier : t -> me:int -> unit
(** Synchronize the live ranks: returns once the decision of a
    zero-byte reduction has reached [me]. *)

val bcast : t -> me:int -> root:int -> Bytes.t option -> Bytes.t
(** One-to-all: the root calls with [Some value], everyone else with
    [None]; all callers return the root's bytes. If [root] is dead the
    tree re-roots for delivery, but only a value published by [root]
    can decide the collective. *)

val reduce :
  t -> me:int -> root:int -> op:(Bytes.t -> Bytes.t -> Bytes.t) ->
  Bytes.t -> Bytes.t
(** All-to-one combination under [op], which must be associative and
    commutative — gateways apply it to child contributions in
    arrival order. Decides at [root] (re-rooted deterministically to
    the lowest live rank if [root] is dead) and, unlike MPI, delivers
    the result to every live caller — the decision flood doubles as
    the exactly-once acknowledgment. *)

val allreduce :
  t -> me:int -> op:(Bytes.t -> Bytes.t -> Bytes.t) -> Bytes.t -> Bytes.t
(** {!reduce} rooted at the lowest live rank, result everywhere. *)

val alltoall : t -> me:int -> (int * Bytes.t) list -> (int * Bytes.t) list
(** Personalized exchange: ship each [(rank, block)] to its rank,
    return the blocks received from every live rank (own block
    included when provided), sorted by rank. Blocks are re-sent under
    repair generations and applied idempotently. *)

val algo : t -> algo
val quorum : t -> int

val generation : t -> int
(** The current repair generation — bumped by every liveness
    transition the vchannel reports. *)

type stats = {
  packets : int;  (** collective-control payloads shipped *)
  combined : int;
      (** contributions merged into an existing partial at a gateway —
          each one is a payload that did {e not} travel to the root *)
  root_contribs : int;
      (** contribution packets the deciding root received — fanout-ish
          under [Tree], [n-1] under [Flat]: the combining on/off
          payload count *)
  dup_suppressed : int;
      (** duplicate contributions dropped whole (same contributor,
          same generation) — never merged, hence never double-counted *)
  journal_answers : int;
      (** late contributions answered from the decision journal (the
          restarted-rank re-join path) *)
  repairs : int;  (** repair generations forced or observed *)
  generation : int;
  last_depth : int;  (** depth of the last deciding tree *)
  last_rounds : int;  (** up+down rounds of the last decided collective *)
  last_covered : int list;
      (** ranks whose contributions the last decision covers, sorted *)
}

val stats : t -> stats

val tree_spine : t -> (int * int) list
(** The [(rank, parent)] edges of the tree the current generation
    would use, rooted at the lowest live rank — for tests asserting
    that an Overloaded gateway was kept off the spine. *)

val tree_depth : t -> int
(** Depth of that tree. *)
