type packet_header = {
  final_dst : int;
  origin : int;
  payload_len : int;
  first : bool;
  last : bool;
  seq : int;  (* 16-bit end-to-end sequence number, 0 when unreliable *)
  ack : bool;  (* cumulative acknowledgment packet (reliable vchannels) *)
  hs : bool;  (* session handshake after a crash epoch (reliable vchannels) *)
  crd : bool;  (* credit-plane packet: grant (4-byte payload) or probe (empty) *)
  agg : bool;  (* aggregate: payload is a train of flow-framed sub-packets *)
  top : bool;  (* topology-control packet: join/drain/epoch announcements *)
  col : bool;  (* collective-control packet: contribution / decision frames *)
}

let header_size = Config.packet_header_size
let magic = '\xAD'

let encode_header h =
  let b = Bytes.make header_size '\000' in
  Bytes.set_int32_le b 0 (Int32.of_int h.final_dst);
  Bytes.set_int32_le b 4 (Int32.of_int h.origin);
  Bytes.set_int32_le b 8 (Int32.of_int h.payload_len);
  let flags =
    (if h.first then 1 else 0)
    lor (if h.last then 2 else 0)
    lor (if h.ack then 4 else 0)
    lor (if h.hs then 8 else 0)
    lor (if h.crd then 16 else 0)
    lor (if h.agg then 32 else 0)
    lor (if h.top then 64 else 0)
    lor if h.col then 128 else 0
  in
  Bytes.set b 12 (Char.chr flags);
  Bytes.set b 13 magic;
  (* Bytes 14-15 were reserved; seq = 0 keeps the unreliable encoding
     byte-identical to the pre-reliability wire format. *)
  Bytes.set_uint16_le b 14 (h.seq land 0xffff);
  b

let decode_header b =
  if Bytes.length b < header_size then
    invalid_arg "Generic_tm.decode_header: short header";
  if Bytes.get b 13 <> magic then
    invalid_arg "Generic_tm.decode_header: bad magic";
  let flags = Char.code (Bytes.get b 12) in
  {
    final_dst = Int32.to_int (Bytes.get_int32_le b 0);
    origin = Int32.to_int (Bytes.get_int32_le b 4);
    payload_len = Int32.to_int (Bytes.get_int32_le b 8);
    first = flags land 1 <> 0;
    last = flags land 2 <> 0;
    seq = Bytes.get_uint16_le b 14;
    ack = flags land 4 <> 0;
    hs = flags land 8 <> 0;
    crd = flags land 16 <> 0;
    agg = flags land 32 <> 0;
    top = flags land 64 <> 0;
    col = flags land 128 <> 0;
  }

let sub_header_size = Config.buffer_header_size

let encode_sub_header ~len s r =
  let b = Bytes.make sub_header_size '\000' in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set b 4 (Char.chr (Iface.send_mode_to_int s));
  Bytes.set b 5 (Char.chr (Iface.recv_mode_to_int r));
  Bytes.set b 6 magic;
  b

let decode_sub_header b =
  if Bytes.length b < sub_header_size then
    invalid_arg "Generic_tm.decode_sub_header: short header";
  if Bytes.get b 6 <> magic then
    invalid_arg "Generic_tm.decode_sub_header: bad magic";
  ( Int32.to_int (Bytes.get_int32_le b 0),
    Iface.send_mode_of_int (Char.code (Bytes.get b 4)),
    Iface.recv_mode_of_int (Char.code (Bytes.get b 5)) )

(* Flow frames: inside an [agg] packet the payload is a train of
   sub-packets, each belonging to one logical flow. The frame header
   carries what the outer header carries for a plain packet — length
   and first/last message delimiters — plus the 16-bit flow id that
   multiplexes thousands of logical channels over one physical route. *)

let flow_frame_header_size = 8

let encode_flow_frame_header ~flow ~first ~last ~len =
  if flow < 0 || flow > 0xffff then
    invalid_arg "Generic_tm.encode_flow_frame_header: flow id out of range";
  let b = Bytes.make flow_frame_header_size '\000' in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_uint16_le b 4 flow;
  let flags = (if first then 1 else 0) lor if last then 2 else 0 in
  Bytes.set b 6 (Char.chr flags);
  Bytes.set b 7 magic;
  b

let decode_flow_frame_header b off =
  if Bytes.length b < off + flow_frame_header_size then
    invalid_arg "Generic_tm.decode_flow_frame_header: short header";
  if Bytes.get b (off + 7) <> magic then
    invalid_arg "Generic_tm.decode_flow_frame_header: bad magic";
  let flags = Char.code (Bytes.get b (off + 6)) in
  ( Bytes.get_uint16_le b (off + 4),
    flags land 1 <> 0,
    flags land 2 <> 0,
    Int32.to_int (Bytes.get_int32_le b (off + 0)) )
