(** Protocol Management Module for SISCI/SCI (paper §5.2.1).

    Three transmission modules, as in the paper: the optimized
    short-message ring (single-PIO-burst slots, behind the 3.9 us
    latency), the regular ring of 8 kB slots whose depth-2 default is
    the adaptive dual-buffering, and the DMA engine TM — implemented but
    not selected unless {!Config.t.sisci_use_dma}, because the D310 DMA
    tops out at 35 MB/s. Rings live in receiver-owned segments with a
    4-byte length + 4-byte valid-flag header per slot. *)

type ring_geometry = { slots : int; payload : int }

val short_geometry : ring_geometry
val regular_geometry : Config.t -> ring_geometry
val dma_geometry : ring_geometry

val seg_id : channel_id:int -> src:int -> kind:int -> int
(** Segment-id naming scheme (kind 0 = short, 1 = regular, 2 = DMA). *)

val select :
  config:Config.t -> len:int -> transit:bool -> Iface.send_mode -> Iface.recv_mode -> int

val driver : (int -> Sisci.t) -> Driver.t
(** [driver adapter_of] builds the PMM over per-rank SISCI adapters. *)
