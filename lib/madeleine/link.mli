(** A link is the per-direction, per-peer state of a channel: the set of
    BMM-fronted Transmission Modules plus the switch function that picks
    among them (paper Fig. 3, "Switch Module" + "Specific Protocol
    Layer"). *)

type selector =
  len:int -> transit:bool -> Iface.send_mode -> Iface.recv_mode -> int
(** Returns the index of the best-suited TM for a packet of [len] bytes
    with the given mode combination. [transit] is true when the hop is
    not endpoint-to-endpoint — the packet originates from or is destined
    to a forwarding gateway — so TMs that hand off user memory directly
    (the zero-copy rendezvous) must not be chosen: a gateway stages
    through protocol buffers by construction. Must be a pure function of
    its arguments: the receiving side runs the same selector to mirror
    the sender's choices. *)

type sender = {
  s_mutex : Marcel.Mutex.t;
      (** Held for the duration of one outgoing message: connections are
          point-to-point and messages on a link are serialized. *)
  s_bmms : Bmm.send array;
  s_select : selector;
}

type receiver = {
  r_mutex : Marcel.Mutex.t;
  r_bmms : Bmm.recv array;
  r_select : selector;
  r_probe : unit -> bool;
      (** True when an incoming message's first data is visible. *)
}

val make_sender : selector -> Bmm.send array -> sender
val make_receiver : selector -> Bmm.recv array -> probe:(unit -> bool) -> receiver
