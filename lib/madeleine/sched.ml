module Engine = Marcel.Engine
module Time = Marcel.Time
module Mutex = Marcel.Mutex

type strategy =
  | Fifo
  | Aggreg of { aggr_max : int option; aggr_flush : Marcel.Time.span option }

let fifo = Fifo
let aggreg ?aggr_max ?aggr_flush () = Aggreg { aggr_max; aggr_flush }

type frame = {
  fr_flow : int;
  fr_first : bool;
  fr_last : bool;
  fr_data : Bytes.t;
}

type stats = {
  sched_frames : int;
  sched_merged : int;
  sched_aggregates : int;
  sched_mean_frames : float;
  sched_flush_full : int;
  sched_flush_deadline : int;
  sched_flush_barrier : int;
  sched_flush_flow : int;
}

type reason = Full | Deadline | Barrier | Flow_order

(* Per-(src, dst) pending batch. [frames_rev] holds submitted-but-not-
   emitted small frames newest-first; [gen] increments every time a
   batch is taken, cancelling the deadline timer armed when the batch
   opened. [mu] serializes emission for the pair: whoever flushes holds
   it across the (blocking) emit, so aggregates leave in take order and
   per-flow FIFO survives concurrent flushers. *)
type pending = {
  mutable frames_rev : frame list;
  mutable bytes : int;
  mutable gen : int;
  mu : Mutex.t;
}

type t = {
  engine : Engine.t;
  aggr_max : int;
  aggr_flush : Time.span;
  emit : src:int -> dst:int -> frame list -> unit;
  pairs : (int * int, pending) Hashtbl.t;
  mutable frames : int;
  mutable merged : int;
  mutable aggregates : int;
  mutable emitted_frames : int;
  mutable flush_full : int;
  mutable flush_deadline : int;
  mutable flush_barrier : int;
  mutable flush_flow : int;
}

let create engine ~aggr_max ~aggr_flush ~emit =
  if aggr_max < Generic_tm.flow_frame_header_size + 1 then
    invalid_arg "Sched.create: aggr_max smaller than one framed byte";
  if aggr_flush <= 0 then invalid_arg "Sched.create: aggr_flush must be > 0";
  {
    engine;
    aggr_max;
    aggr_flush;
    emit;
    pairs = Hashtbl.create 32;
    frames = 0;
    merged = 0;
    aggregates = 0;
    emitted_frames = 0;
    flush_full = 0;
    flush_deadline = 0;
    flush_barrier = 0;
    flush_flow = 0;
  }

let pair t key =
  match Hashtbl.find_opt t.pairs key with
  | Some p -> p
  | None ->
      let p = { frames_rev = []; bytes = 0; gen = 0; mu = Mutex.create () } in
      Hashtbl.add t.pairs key p;
      p

let pair_lock t ~src ~dst = (pair t (src, dst)).mu
let frame_wire_size fr = Generic_tm.flow_frame_header_size + Bytes.length fr.fr_data

let note_reason t = function
  | Full -> t.flush_full <- t.flush_full + 1
  | Deadline -> t.flush_deadline <- t.flush_deadline + 1
  | Barrier -> t.flush_barrier <- t.flush_barrier + 1
  | Flow_order -> t.flush_flow <- t.flush_flow + 1

(* Ship one batch. Caller holds [p.mu]. *)
let emit_batch t ~src ~dst frames =
  let n = List.length frames in
  t.aggregates <- t.aggregates + 1;
  t.emitted_frames <- t.emitted_frames + n;
  if n > 1 then t.merged <- t.merged + n;
  t.emit ~src ~dst frames

(* Split a taken batch into [aggr_max]-bounded wire packets. Usually a
   no-op (the submit path flushes before the budget overflows), but
   frames keep accumulating while a flusher is blocked in emit holding
   the pair lock, and the next flusher then takes them all at once. A
   single frame larger than the budget ships alone. *)
let chunk_batch t batch =
  let rec go acc cur cur_bytes = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | fr :: rest ->
        let sz = frame_wire_size fr in
        if cur <> [] && cur_bytes + sz > t.aggr_max then
          go (List.rev cur :: acc) [ fr ] sz rest
        else go acc (fr :: cur) (cur_bytes + sz) rest
  in
  go [] [] 0 batch

(* Take and ship the pending batch. Caller holds [p.mu]. Taking before
   emitting matters: emit blocks (credits, window), other threads keep
   submitting, and their frames must land in the *next* batch rather
   than retroactively join one already on the wire. *)
let flush_locked t ~src ~dst p reason =
  match p.frames_rev with
  | [] -> ()
  | rev ->
      let batch = List.rev rev in
      p.frames_rev <- [];
      p.bytes <- 0;
      p.gen <- p.gen + 1;
      note_reason t reason;
      List.iter (emit_batch t ~src ~dst) (chunk_batch t batch)

let flush t ~src ~dst p reason =
  Mutex.lock p.mu;
  (match flush_locked t ~src ~dst p reason with
  | () -> ()
  | exception e ->
      Mutex.unlock p.mu;
      raise e);
  Mutex.unlock p.mu

(* Opening a batch arms its deadline: the oldest buffered frame never
   waits longer than [aggr_flush]. The timer captures the batch's
   generation; if the batch was flushed for another reason first, the
   generation moved on and the timer is a no-op. Timer callbacks must
   not block, so the actual flush runs in a daemon — terminal delivery
   errors are swallowed there exactly as the ack/grant daemons do. *)
let arm_deadline t ~src ~dst p =
  let gen = p.gen in
  Engine.at t.engine
    (Time.add (Engine.now t.engine) t.aggr_flush)
    (fun () ->
      if p.gen = gen && p.frames_rev <> [] then
        Engine.spawn t.engine ~daemon:true
          ~name:(Printf.sprintf "vchannel.sched.flush.%d->%d" src dst)
          (fun () ->
            try flush t ~src ~dst p Deadline
            with _ -> ()))

let submit t ~src ~dst ~bulk fr =
  let p = pair t (src, dst) in
  t.frames <- t.frames + 1;
  if bulk then begin
    (* Rendezvous-class: ship now, overtaking other flows' buffered
       small frames (the reordering tactic) — but never our own flow's:
       those must leave first or the receiver would see the message
       orders swapped. *)
    Mutex.lock p.mu;
    (match
       if List.exists (fun f -> f.fr_flow = fr.fr_flow) p.frames_rev then
         flush_locked t ~src ~dst p Flow_order;
       emit_batch t ~src ~dst [ fr ]
     with
    | () -> ()
    | exception e ->
        Mutex.unlock p.mu;
        raise e);
    Mutex.unlock p.mu
  end
  else begin
    let sz = frame_wire_size fr in
    if p.bytes > 0 && p.bytes + sz > t.aggr_max then flush t ~src ~dst p Full;
    let was_empty = p.frames_rev = [] in
    p.frames_rev <- fr :: p.frames_rev;
    p.bytes <- p.bytes + sz;
    if was_empty then arm_deadline t ~src ~dst p;
    if p.bytes >= t.aggr_max then flush t ~src ~dst p Full
  end

let flush_pair t ~src ~dst =
  match Hashtbl.find_opt t.pairs (src, dst) with
  | None -> ()
  | Some p -> flush t ~src ~dst p Barrier

let flush_all t ~src =
  Hashtbl.fold (fun (s, d) _ acc -> if s = src then d :: acc else acc) t.pairs []
  |> List.sort compare
  |> List.iter (fun dst -> flush_pair t ~src ~dst)

let stats t =
  {
    sched_frames = t.frames;
    sched_merged = t.merged;
    sched_aggregates = t.aggregates;
    sched_mean_frames =
      (if t.aggregates = 0 then 0.0
       else float_of_int t.emitted_frames /. float_of_int t.aggregates);
    sched_flush_full = t.flush_full;
    sched_flush_deadline = t.flush_deadline;
    sched_flush_barrier = t.flush_barrier;
    sched_flush_flow = t.flush_flow;
  }
