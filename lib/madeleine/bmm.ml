module Engine = Marcel.Engine
module Time = Marcel.Time

type send = {
  bs_name : string;
  append : Buf.t -> Iface.send_mode -> Iface.recv_mode -> unit;
  commit : unit -> unit;
}

type recv = {
  br_name : string;
  extract : Buf.t -> Iface.send_mode -> Iface.recv_mode -> unit;
  checkout : unit -> unit;
}

(* Staging a SAFER buffer is a real memcpy on the host. *)
let stage_copy buf =
  Simnet.Cost.memcpy (Buf.length buf);
  Buf.stage buf

(* A buffer as queued for a delayed send. SAFER is staged immediately;
   LATER and CHEAPER keep the user reference, so LATER picks up
   modifications made before the flush — its defining semantics. *)
let queued_view buf = function
  | Iface.Send_safer -> stage_copy buf
  | Iface.Send_later | Iface.Send_cheaper -> buf

(* Held buffers accumulate in a reusable Bufs vector, flushed by handing
   the vector itself to the TM and clearing it afterwards: no per-flush
   list materialization. Safe because the link's mutex serializes a
   whole message, so nothing appends while a grouped send blocks. *)

let eager_dynamic_send (d : Tm.dynamic_send) =
  let held = Bufs.create () in
  let flush () =
    if not (Bufs.is_empty held) then begin
      (* Clear even when the send fails (reliable transports can give up
         on a dead peer): the aborted message must not leak stale buffers
         into the next message on this link. *)
      match d.Tm.send_buffer_group held with
      | () -> Bufs.clear held
      | exception e ->
          Bufs.clear held;
          raise e
    end
  in
  let append buf s _r =
    match s with
    | Iface.Send_later -> Bufs.push held buf
    | Iface.Send_safer | Iface.Send_cheaper ->
        (* Order: anything behind a pending LATER buffer must wait too. *)
        if Bufs.is_empty held then d.Tm.send_buffer buf
        else Bufs.push held (queued_view buf s)
  in
  { bs_name = "eager-dynamic"; append; commit = flush }

let aggregating_dynamic_send (d : Tm.dynamic_send) =
  let held = Bufs.create () in
  let later_pending = ref false in
  let flush () =
    if not (Bufs.is_empty held) then begin
      later_pending := false;
      match d.Tm.send_buffer_group held with
      | () -> Bufs.clear held
      | exception e ->
          Bufs.clear held;
          raise e
    end
  in
  let append buf s r =
    Bufs.push held (queued_view buf s);
    if s = Iface.Send_later then later_pending := true;
    (* The receiver should see EXPRESS data as soon as possible, so the
       aggregate is flushed right away — unless a LATER buffer is queued,
       whose contents are not final before commit. (EXPRESS only promises
       availability once the receiver's unpack returns, which blocks
       until the data arrives either way.) *)
    match r with
    | Iface.Receive_express -> if not !later_pending then flush ()
    | Iface.Receive_cheaper -> ()
  in
  { bs_name = "aggregating-dynamic"; append; commit = flush }

let dynamic_recv (d : Tm.dynamic_recv) =
  let deferred = Bufs.create () in
  let drain () =
    if not (Bufs.is_empty deferred) then begin
      (* Clear even when the read fails (a reliable transport cuts a
         receive short when the sending host crashes): the abandoned
         message must not leak half-filled buffers into the next
         message arriving on this link. *)
      match d.Tm.receive_buffer_group deferred with
      | () -> Bufs.clear deferred
      | exception e ->
          Bufs.clear deferred;
          raise e
    end
  in
  let extract buf _s r =
    match r with
    | Iface.Receive_express ->
        drain ();
        d.Tm.receive_buffer buf
    | Iface.Receive_cheaper -> Bufs.push deferred buf
  in
  { br_name = "dynamic"; extract; checkout = drain }

let static_copy_send (s : Tm.static_send) =
  let capacity = s.Tm.send_capacity in
  if capacity <= 0 then invalid_arg "Bmm.static_copy_send: capacity <= 0";
  (* Buffers segment into slots by pure capacity arithmetic (the receiver
     mirrors the same arithmetic), but *shipping* a slot reads its
     contents — which LATER forbids before commit. On the common path
     (no LATER pending, nothing parked) a finished slot writes to the TM
     straight out of [current]; only slots parked behind a LATER buffer
     are snapshotted into [complete] to ship at the next opportunity. *)
  let complete : Buf.t list Queue.t = Queue.create () in
  let current = Bufs.create () in
  let fill = ref 0 in
  let later_pending = ref false in
  let ship_slot entries =
    s.Tm.obtain_static_buffer ();
    List.iter s.Tm.write_static entries;
    s.Tm.ship_static ()
  in
  let ship_complete () =
    while not (Queue.is_empty complete) do
      ship_slot (Queue.pop complete)
    done
  in
  let ship_current () =
    s.Tm.obtain_static_buffer ();
    Bufs.iter s.Tm.write_static current;
    s.Tm.ship_static ();
    Bufs.clear current;
    fill := 0
  in
  let close_current () =
    if not (Bufs.is_empty current) then begin
      Queue.push (Bufs.to_list current) complete;
      Bufs.clear current;
      fill := 0
    end
  in
  (* A slot boundary: [current] is full (or an oversized buffer needs a
     fresh slot). Park it behind a pending LATER buffer, else ship —
     directly when nothing is parked in front of it. *)
  let close_boundary () =
    if !later_pending then close_current ()
    else if Queue.is_empty complete then ship_current ()
    else begin
      close_current ();
      ship_complete ()
    end
  in
  let commit () =
    later_pending := false;
    if Queue.is_empty complete then begin
      if not (Bufs.is_empty current) then ship_current ()
    end
    else begin
      close_current ();
      ship_complete ()
    end
  in
  let rec place buf s_mode =
    let remaining = capacity - !fill in
    if Buf.length buf <= remaining then begin
      Bufs.push current (queued_view buf s_mode);
      if s_mode = Iface.Send_later then later_pending := true;
      fill := !fill + Buf.length buf;
      if !fill = capacity then close_boundary ()
    end
    else if !fill > 0 then begin
      close_boundary ();
      place buf s_mode
    end
    else begin
      (* A buffer larger than a whole slot: split across slots. *)
      place (Buf.sub buf ~pos:0 ~len:capacity) s_mode;
      place (Buf.sub buf ~pos:capacity ~len:(Buf.length buf - capacity)) s_mode
    end
  in
  let append buf s_mode r =
    place buf s_mode;
    match r with
    | Iface.Receive_express -> if not !later_pending then commit ()
    | Iface.Receive_cheaper -> ()
  in
  { bs_name = "static-copy"; append; commit }

let static_copy_recv (s : Tm.static_recv) =
  let capacity = s.Tm.recv_capacity in
  if capacity <= 0 then invalid_arg "Bmm.static_copy_recv: capacity <= 0";
  let fill = ref 0 in
  let active_len = ref None in
  let ensure_active () =
    match !active_len with
    | Some _ -> ()
    | None -> active_len := Some (s.Tm.fetch_static ())
  in
  let finish_slot () =
    match !active_len with
    | None -> ()
    | Some actual ->
        if actual <> !fill then
          raise
            (Config.Symmetry_violation
               (Printf.sprintf
                  "static slot length mismatch: sender shipped %d bytes, \
                   receiver unpacked %d" actual !fill));
        s.Tm.consume_static ();
        active_len := None;
        fill := 0
  in
  (* Mirrors the sender's later-pending rule exactly: both sides see the
     same (size, mode) sequence, and the flag has the same lifecycle —
     set by a LATER field, cleared only at commit/checkout — so the slot
     layouts stay in lock-step. *)
  let later_pending = ref false in
  let rec place buf s_mode =
    let remaining = capacity - !fill in
    if Buf.length buf <= remaining then begin
      ensure_active ();
      s.Tm.read_static buf;
      if s_mode = Iface.Send_later then later_pending := true;
      fill := !fill + Buf.length buf;
      if !fill = capacity then finish_slot ()
    end
    else if !fill > 0 then begin
      finish_slot ();
      place buf s_mode
    end
    else begin
      place (Buf.sub buf ~pos:0 ~len:capacity) s_mode;
      place (Buf.sub buf ~pos:capacity ~len:(Buf.length buf - capacity)) s_mode
    end
  in
  let extract buf s_mode r =
    place buf s_mode;
    (* Mirror the sender, which flushes its slot after an EXPRESS field
       unless a LATER field is pending. *)
    match r with
    | Iface.Receive_express -> if not !later_pending then finish_slot ()
    | Iface.Receive_cheaper -> ()
  in
  let checkout () =
    later_pending := false;
    finish_slot ()
  in
  { br_name = "static-copy"; extract; checkout }

let send_of_tm ~aggregation (tm : Tm.send) =
  match tm.Tm.s_side with
  | Tm.Dynamic_send d ->
      if aggregation then aggregating_dynamic_send d else eager_dynamic_send d
  | Tm.Static_send s -> static_copy_send s

let recv_of_tm (tm : Tm.recv) =
  match tm.Tm.r_side with
  | Tm.Dynamic_recv d -> dynamic_recv d
  | Tm.Static_recv s -> static_copy_recv s
