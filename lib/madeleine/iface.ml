type send_mode = Send_safer | Send_later | Send_cheaper
type recv_mode = Receive_express | Receive_cheaper

let send_mode_to_int = function
  | Send_safer -> 0
  | Send_later -> 1
  | Send_cheaper -> 2

let send_mode_of_int = function
  | 0 -> Send_safer
  | 1 -> Send_later
  | 2 -> Send_cheaper
  | n -> invalid_arg (Printf.sprintf "Iface.send_mode_of_int: %d" n)

let recv_mode_to_int = function Receive_express -> 0 | Receive_cheaper -> 1

let recv_mode_of_int = function
  | 0 -> Receive_express
  | 1 -> Receive_cheaper
  | n -> invalid_arg (Printf.sprintf "Iface.recv_mode_of_int: %d" n)

let pp_send_mode ppf m =
  Format.pp_print_string ppf
    (match m with
    | Send_safer -> "send_SAFER"
    | Send_later -> "send_LATER"
    | Send_cheaper -> "send_CHEAPER")

let pp_recv_mode ppf m =
  Format.pp_print_string ppf
    (match m with
    | Receive_express -> "receive_EXPRESS"
    | Receive_cheaper -> "receive_CHEAPER")

type health = Up | Degraded of int | Overloaded | Down | Departed

let pp_health ppf = function
  | Up -> Format.pp_print_string ppf "up"
  | Degraded n -> Format.fprintf ppf "degraded(%d)" n
  | Overloaded -> Format.pp_print_string ppf "overloaded"
  | Down -> Format.pp_print_string ppf "down"
  | Departed -> Format.pp_print_string ppf "departed"
