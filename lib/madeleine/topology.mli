(** Versioned live topology: epoch-numbered immutable snapshots of the
    rank set.

    A snapshot records which ranks are members of the session at a given
    epoch, plus the coordinator rank that arbitrates membership changes.
    Snapshots are immutable; {!join} and {!drain} return a fresh
    snapshot with the epoch advanced by one, so holders of an old
    snapshot keep a consistent view until they pick up the new one.
    {!diff} compares two snapshots, which lets the vchannel re-emit only
    the flows whose endpoints or relays actually changed.

    The physical world (nodes, channels, fabrics) is fixed at
    {!Vchannel.create} time; the topology restricts which of those
    physical ranks are currently *members*. A drained rank keeps its
    hardware — it can later {!join} again under a higher epoch. *)

type t

type change = { joined : int list; departed : int list }

val make : ?epoch:int -> coordinator:int -> int list -> t
(** Fresh snapshot over [ranks] (deduplicated, sorted). Raises
    [Invalid_argument] if the rank set is empty, the epoch is negative,
    or the coordinator is not a member. [epoch] defaults to 0. *)

val epoch : t -> int
(** Strictly increases with every membership change. *)

val ranks : t -> int list
(** Current members, sorted ascending. *)

val coordinator : t -> int
val mem : t -> int -> bool
val cardinal : t -> int

val join : t -> int -> t
(** Next epoch with [rank] added. Raises [Invalid_argument] if it is
    already a member. *)

val drain : t -> int -> t
(** Next epoch with [rank] removed. Raises [Invalid_argument] if it is
    not a member or is the coordinator. *)

val with_coordinator : t -> int -> t
(** Next epoch with the coordinator moved to [rank] — the snapshot a
    quorum election commits. Raises [Invalid_argument] if [rank] is not
    a member; returns the snapshot unchanged (same epoch) if [rank]
    already coordinates. *)

val diff : t -> t -> change
(** [diff old new_] lists the ranks that joined and departed going from
    [old] to [new_]. *)

val pp : Format.formatter -> t -> unit
