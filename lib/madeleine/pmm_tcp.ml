(* Protocol Management Module for TCP (paper §7: Madeleine II "currently
   runs on top of BIP, SISCI, TCP, VIA").

   One transmission module, dynamic buffers, with scatter-gather grouping
   (writev/readv) so the aggregating BMM amortizes the hefty Linux 2.2
   kernel overhead across grouped buffers. One pre-established stream per
   node pair per channel carries both directions.

   With [Config.tcp_connect_timeout] set, session setup switches from
   pre-established socketpairs to live listen/connect/accept handshakes
   bounded by that timeout, so a peer that the fault plane has crashed
   surfaces as [Tcpnet.Timeout] instead of hanging the session. *)

module Mutex = Marcel.Mutex
module Ivar = Marcel.Ivar

type pair_conns = { low_end : Tcpnet.conn; high_end : Tcpnet.conn }

(* Pre-established pair, or a pair still in handshake: readers block on
   the ivars, which the connect/accept threads fill. *)
type pair_src =
  | Eager of pair_conns
  | Pending of Tcpnet.conn Ivar.t * Tcpnet.conn Ivar.t  (* low end, high end *)

let conn_for pairs ~me ~peer =
  let key = (min me peer, max me peer) in
  match Hashtbl.find pairs key with
  | Eager p -> if me <= peer then p.low_end else p.high_end
  | Pending (lo, hi) -> Ivar.read (if me <= peer then lo else hi)

(* Reliable-mode sends can give up on a dead peer, and reads can be cut
   short by a peer crash wiping the bytes they were waiting for; surface
   both as the library-level error rather than a transport exception. *)
let guard f =
  try f () with Tcpnet.Timeout { msg; _ } -> raise (Config.Peer_unreachable msg)

let send_tm conn =
  {
    Tm.s_name = "tcp";
    s_side =
      Tm.Dynamic_send
        {
          Tm.send_buffer =
            (fun buf -> guard (fun () -> Tcpnet.send conn (Buf.to_bytes buf)));
          send_buffer_group =
            (fun bufs ->
              guard (fun () ->
                  Tcpnet.send_group conn (Bufs.map_to_list Buf.to_bytes bufs)));
        };
  }

let recv_tm conn =
  let slice buf = (buf.Buf.data, buf.Buf.off, buf.Buf.len) in
  {
    Tm.r_name = "tcp";
    r_side =
      Tm.Dynamic_recv
        {
          Tm.receive_buffer =
            (fun buf ->
              let data, off, len = slice buf in
              guard (fun () -> Tcpnet.recv conn data ~off ~len));
          receive_buffer_group =
            (fun bufs ->
              guard (fun () ->
                  Tcpnet.recv_group conn (Bufs.map_to_list slice bufs)));
        };
    r_probe = (fun () -> Tcpnet.available conn > 0);
  }

let select ~len:_ ~transit:_ _s _r = 0

let health_of c =
  if Tcpnet.is_dead c then Iface.Down
  else
    match Tcpnet.consecutive_failures c with
    | 0 -> Iface.Up
    | n -> Iface.Degraded n

let driver (stack_of : int -> Tcpnet.t) =
  let instantiate ~channel_id ~config ~ranks =
    let pairs = Hashtbl.create 16 in
    let handshake_pair ~timeout low high =
      let stack_lo = stack_of low and stack_hi = stack_of high in
      let engine = Tcpnet.engine stack_lo in
      (* Unique per (channel, pair): the high end listens, the low end
         dials. *)
      let port = (channel_id lsl 10) lor low in
      Tcpnet.listen stack_hi ~port;
      let iv_lo = Ivar.create () and iv_hi = Ivar.create () in
      Marcel.Engine.spawn engine ~daemon:true
        ~name:(Printf.sprintf "tcp.accept.%d.%d-%d" channel_id low high)
        (fun () -> Ivar.fill iv_hi (Tcpnet.accept stack_hi ~port));
      (* Not a daemon: a handshake that cannot complete must surface (as
         Tcpnet.Timeout out of the engine), not be silently discarded. *)
      Marcel.Engine.spawn engine
        ~name:(Printf.sprintf "tcp.connect.%d.%d-%d" channel_id low high)
        (fun () ->
          Ivar.fill iv_lo (Tcpnet.connect ~timeout stack_lo ~node_id:high ~port));
      Pending (iv_lo, iv_hi)
    in
    let rec all_pairs = function
      | [] -> ()
      | a :: rest ->
          List.iter
            (fun b ->
              let low, high = (min a b, max a b) in
              let src =
                match config.Config.tcp_connect_timeout with
                | None ->
                    let low_end, high_end =
                      Tcpnet.socketpair (stack_of low) (stack_of high)
                    in
                    Eager { low_end; high_end }
                | Some timeout -> handshake_pair ~timeout low high
              in
              Hashtbl.add pairs (low, high) src)
            rest;
          all_pairs rest
    in
    all_pairs ranks;
    let sender_link =
      Driver.memo_links (fun ~src ~dst ->
          let conn = conn_for pairs ~me:src ~peer:dst in
          Link.make_sender select
            [| Bmm.send_of_tm ~aggregation:config.Config.aggregation (send_tm conn) |])
    in
    let receiver_link =
      Driver.memo_links (fun ~src ~dst ->
          (* src = me, dst = from *)
          let conn = conn_for pairs ~me:src ~peer:dst in
          let tm = recv_tm conn in
          Link.make_receiver select
            [| Bmm.recv_of_tm tm |]
            ~probe:tm.Tm.r_probe)
    in
    let end_for p ~me ~low =
      match p with
      | Eager p -> Some (if low = me then p.low_end else p.high_end)
      | Pending (lo, hi) -> Ivar.peek (if low = me then lo else hi)
    in
    {
      Driver.inst_name = "tcp";
      inst_fabric =
        (match ranks with
        | r :: _ -> Some (Tcpnet.fabric_name (stack_of r))
        | [] -> None);
      sender_link;
      receiver_link = (fun ~me ~from -> receiver_link ~src:me ~dst:from);
      on_data =
        (fun ~me hook ->
          Hashtbl.iter
            (fun (low, high) p ->
              if low = me || high = me then
                match end_for p ~me ~low with
                | Some c -> Tcpnet.set_data_hook c hook
                | None ->
                    (* Still in handshake: hook up once established. *)
                    let engine = Tcpnet.engine (stack_of me) in
                    let iv =
                      match p with
                      | Pending (lo, hi) -> if low = me then lo else hi
                      | Eager _ -> assert false
                    in
                    Marcel.Engine.spawn engine ~daemon:true
                      ~name:(Printf.sprintf "tcp.hook.%d.%d" channel_id me)
                      (fun () -> Tcpnet.set_data_hook (Ivar.read iv) hook))
            pairs);
      peer_health =
        (fun ~me ~peer ->
          match Hashtbl.find_opt pairs (min me peer, max me peer) with
          | None -> Iface.Up
          | Some p -> (
              match end_for p ~me ~low:(min me peer) with
              | Some c -> health_of c
              | None -> Iface.Up));
      reg_stats = (fun ~me:_ -> None);
    }
  in
  { Driver.driver_name = "tcp"; instantiate }
