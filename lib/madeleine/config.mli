(** Per-channel configuration and the library's software cost constants. *)

type rx_interaction =
  | Rx_poll  (** spin until data shows up (the paper's measured mode) *)
  | Rx_interrupt  (** block on NIC interrupts *)
  | Rx_adaptive of Marcel.Time.span
      (** poll for a bounded window, then arm the interrupt — the
          adaptive polling/interruption mechanism the paper's conclusion
          announces as future work with the Marcel thread library,
          implemented here as an extension. *)

type t = {
  checked : bool;
      (** Validate pack/unpack symmetry (sizes and mode combinations) and
          raise {!Symmetry_violation} on mismatch, instead of the paper's
          "unspecified behavior". The check is performed in-model and
          costs no simulated time. Default [true]. *)
  aggregation : bool;
      (** Let dynamic-buffer BMMs group successive CHEAPER buffers until a
          commit point (paper §3.4). [false] forces eager per-buffer
          sends — the ablation knob. Default [true]. *)
  sisci_ring_slots : int;
      (** Slots in the regular SISCI transmission module's ring. 2 is the
          paper's dual-buffering; 1 disables the overlap — the ablation
          knob for §5.2.1. *)
  sisci_use_dma : bool;
      (** Route large SISCI blocks through the DMA transmission module.
          Implemented but off by default, exactly as in the paper (the
          D310 DMA tops out at 35 MB/s). *)
  sisci_slot_payload : int;
      (** Payload capacity of one regular-ring slot (the paper's 8 kB
          dual-buffering granularity). Clusterfile key [slot_payload=]. *)
  sisci_dma_threshold : int;
      (** Minimum block size routed to the DMA TM when it is enabled.
          Clusterfile key [dma_threshold=]. *)
  rendezvous_threshold : int option;
      (** When set, blocks of at least this many bytes on fabrics with a
          zero-copy TM (sisci, via) take the RDMA rendezvous path
          instead of the staged ring — except on gateway transit hops,
          which stage by construction. [None] (the default) disables
          the rendezvous entirely: the Switch never selects it and the
          wire behavior is bit-identical to earlier versions.
          Clusterfile key [rendezvous=] (bytes, or [auto] to use the
          measured crossover from [madbench crossover]). *)
  regcache_entries : int;
      (** Capacity (registrations) of the sender-side pin-down cache
          used by the rendezvous path; 0 registers per send. Clusterfile
          key [regcache=]. *)
  regcache_bytes : int option;
      (** Optional cap on total bytes pinned by the cache. Clusterfile
          key [regcache_bytes=]. *)
  rx_interaction : rx_interaction;
      (** How SISCI receive paths wait for incoming data. Default
          {!Rx_poll}. *)
  tcp_connect_timeout : Marcel.Time.span option;
      (** When set, TCP channel session setup uses live connect/accept
          handshakes with this timeout instead of pre-established
          socketpairs, so a crashed peer surfaces as
          {!Tcpnet.Timeout} during [instantiate] rather than a hang.
          Default [None] (pre-established, no timeout). *)
}

exception Symmetry_violation of string

exception Peer_unreachable of string
(** A reliable transport gave up delivering to a peer (crash or
    persistent loss). Raised from [pack]/[end_packing]-driven sends on
    channels whose interface has failure detection enabled. *)

val default : t

(** {1 Software cost constants}

    Per-operation CPU costs of the Madeleine layer itself, calibrated so
    that Madeleine/SISCI lands at the paper's 3.9 us minimal latency and
    Madeleine/BIP at 7 us (vs 5 us raw). *)

val pack_overhead : Marcel.Time.span
val unpack_overhead : Marcel.Time.span
val begin_overhead : Marcel.Time.span
val end_overhead : Marcel.Time.span

(** {1 SISCI transmission-module geometry} *)

val sisci_short_max : int
(** Largest payload taking the optimized short-message TM. *)

val sisci_short_slots : int

val default_sisci_slot_payload : int
(** Default for {!type-t.sisci_slot_payload} (the paper's 8 kB). *)

val default_sisci_dma_threshold : int
(** Default for {!type-t.sisci_dma_threshold}. *)

val default_regcache_entries : int
(** Default for {!type-t.regcache_entries}. *)

val default_adaptive_window : Marcel.Time.span
(** Polling window suggested for {!Rx_adaptive}: a bit above the
    network's round-trip scale, so hot exchanges never take interrupts. *)

val slot_header : int
(** Bytes of slot header ([len] word + valid flag) in both SISCI rings. *)

(** {1 Other TM geometry} *)

val bip_short_payload : int
(** Aggregation capacity of the BIP short-message TM: one BIP short
    message minus nothing — the whole buffer is payload, BIP itself
    frames it. *)

val via_slot_payload : int
val sbp_slot_payload : int
val via_posted_descriptors : int

(** {1 Virtual channels (paper §6)} *)

val default_vchannel_mtu : int
(** Default packet size of the Generic TM. The paper picks the size at
    which both networks perform equally (16 kB for SCI/Myrinet, §6.2.1);
    Figs. 10/11 sweep it from 8 kB to 128 kB. *)

val gateway_packet_overhead : Marcel.Time.span
(** Per-packet software overhead on a gateway (thread hand-off, buffer
    management): the ~50 us/step the paper measures but cannot further
    break down (§6.2.2). *)

val default_route_patience : Marcel.Time.span
(** How long a reliable virtual channel waits for a route (or a
    crash-epoch session handshake) to come back before declaring a flow
    partitioned. Long enough to ride out a restart window; short enough
    that a permanent partition still surfaces as an error. *)

val packet_header_size : int
(** Generic TM per-packet self-description: final destination, origin,
    payload length, first/last flags. *)

val buffer_header_size : int
(** Generic TM per-buffer self-description: length and the emission /
    reception constraints (paper §6.1). *)

(** {1 Flow control and overload (backpressure plane)} *)

val default_gateway_pool : int
(** Forwarding buffers per gateway pump when [gw_pool=] is not given: the
    paper's dual-buffer pipeline (§6.2.2). A full pool blocks the ingress
    dispatcher — backpressure propagates hop-by-hop instead of queueing. *)

val default_unacked_window : int
(** Cap on a reliable flow's origin re-emission log (packets) when
    credits are unconfigured. With [credits=n] the cap is [n] — the log
    can never outgrow the credit window anyway. *)

val credit_probe_interval : Marcel.Time.span
(** How long a credit-blocked sender waits before shipping a zero-window
    probe, so a lost grant cannot wedge a flow forever. *)

val overload_hold : Marcel.Time.span
(** Hysteresis delay before a gateway that dropped back to its low
    watermark clears its [Overloaded] status — several packet-forwarding
    overheads, so a pool oscillating at full load does not flap. *)

val default_aggr_flush : Marcel.Time.span
(** Aggregation deadline when [aggr_flush_us=] is not given: the longest
    a small frame buffered by a [sched=aggreg] vchannel waits for
    merge partners before its pair is flushed — the latency the
    aggregating scheduler is allowed to trade for goodput. *)
