type instance = {
  inst_name : string;
  inst_fabric : string option;
  sender_link : src:int -> dst:int -> Link.sender;
  receiver_link : me:int -> from:int -> Link.receiver;
  on_data : me:int -> (unit -> unit) -> unit;
  peer_health : me:int -> peer:int -> Iface.health;
  reg_stats : me:int -> Regcache.stats option;
      (** Counters of [me]'s sender-side registration cache, when the
          instance has a zero-copy rendezvous TM and the rank has sent
          through it; [None] otherwise. *)
}

type t = {
  driver_name : string;
  instantiate : channel_id:int -> config:Config.t -> ranks:int list -> instance;
}

let memo_links build =
  let table = Hashtbl.create 16 in
  fun ~src ~dst ->
    match Hashtbl.find_opt table (src, dst) with
    | Some l -> l
    | None ->
        let l = build ~src ~dst in
        Hashtbl.add table (src, dst) l;
        l
