(** Protocol Management Modules as pluggable drivers (paper §3.3).

    A driver is the factory a channel uses to build its links: it knows
    how to construct, for one channel over one network interface, the
    per-pair sender and receiver link state (TMs + BMMs + switch
    function), how to probe for incoming data and how to subscribe to
    data-arrival events. One PMM exists per supported interface
    (pmm_bip, pmm_sisci, pmm_tcp, pmm_via, pmm_sbp). *)

type instance = {
  inst_name : string;
  inst_fabric : string option;
      (** Name of the simulated fabric this instance's links cross, when
          the driver knows it — failure detectors use it to aim their
          heartbeat probes at the same links data frames take. *)
  sender_link : src:int -> dst:int -> Link.sender;
      (** Memoized: repeated calls return the same link. *)
  receiver_link : me:int -> from:int -> Link.receiver;
  on_data : me:int -> (unit -> unit) -> unit;
      (** Subscribes a callback to "new data visible at [me]" events,
          feeding any-source [begin_unpacking]. *)
  peer_health : me:int -> peer:int -> Iface.health;
      (** Health of the protocol-level path from [me] to [peer].
          Interfaces without failure detection always report [Up]. *)
  reg_stats : me:int -> Regcache.stats option;
      (** Counters of [me]'s sender-side registration (pin-down) cache,
          when the instance has a zero-copy rendezvous TM and the rank
          has sent through it; [None] otherwise. *)
}

type t = {
  driver_name : string;
  instantiate : channel_id:int -> config:Config.t -> ranks:int list -> instance;
      (** Builds all protocol-level resources for one channel (tags,
          segments, sockets, VIs...) spanning [ranks]. *)
}

val memo_links :
  (src:int -> dst:int -> 'a) -> (src:int -> dst:int -> 'a)
(** Helper for drivers: memoizes link construction per ordered pair. *)
