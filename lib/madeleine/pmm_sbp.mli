(** Protocol Management Module for SBP, the static-buffer kernel
    protocol — protocol-owned buffers on {e both} sides (§6.1's worst
    case for gateway forwarding). The sender stages into a pool buffer
    obtained from SBP (blocking on the pool: natural back-pressure); the
    receiver copies out of the delivered pool buffer and releases it. *)

val capacity : int
val select : len:int -> transit:bool -> Iface.send_mode -> Iface.recv_mode -> int
val driver : (int -> Sbp.t) -> Driver.t
