(** The Generic Transmission Module's wire format (paper §6.1).

    Within homogeneous sessions Madeleine messages are not
    self-described; across gateways they must be, because the gateway
    knows nothing of the application's unpack sequence. The Generic TM
    fragments a message into MTU-sized packets and adds two levels of
    description:

    - a {e packet header} on every packet (destination and origin of the
      whole message, payload length, first/last flags) — information
      common to the message travels in the first packet of the paper's
      design; carrying it per-packet keeps gateways stateless here;
    - a {e buffer sub-header} in front of every user buffer in the
      payload stream (length + emission/reception constraint codes),
      which also lets the receiving end validate pack/unpack symmetry. *)

type packet_header = {
  final_dst : int;
  origin : int;
  payload_len : int;
  first : bool;
  last : bool;
  seq : int;
      (** 16-bit end-to-end sequence number per (origin, destination)
          flow, used by reliable vchannels for duplicate suppression.
          0 on unreliable vchannels — the wire encoding is then
          byte-identical to the pre-reliability format. *)
  ack : bool;
      (** Zero-payload cumulative acknowledgment travelling back to
          [final_dst] = the data's origin (reliable vchannels only). *)
  hs : bool;
      (** Session-handshake packet: after a node restarts with a new
          crash epoch, each peer holding a delivery journal for it sends
          an [hs] packet whose [seq] is the sequence number it expects
          next and whose 4-byte payload is the restart epoch (riding as
          genuine payload, so gateways forward it like data). The
          restarted origin resumes numbering at the highest such
          expectation (reliable vchannels only). *)
  crd : bool;
      (** Credit-plane packet for end-to-end flow control (vchannels with
          [credits=] configured). With a 4-byte payload it is a {e grant}:
          the payload is the receiver's cumulative little-endian count of
          consumed data packets on the ([final_dst] ← [origin]) flow.
          With an empty payload it is a {e zero-window probe} from a
          blocked sender; the receiver answers with a fresh grant. Both
          ride the normal forwarding path, so they cross gateways like
          data. Combined with [ack] on reliable vchannels a grant also
          carries a cumulative acknowledgment in [seq]. Never set when
          credits are unconfigured — the wire format is then unchanged. *)
  agg : bool;
      (** Aggregate packet emitted by an aggregating scheduler
          ([sched=aggreg] vchannels): the payload is a train of flow
          frames, each prefixed by a {!flow_frame_header_size}-byte
          sub-header (see {!encode_flow_frame_header}). The outer
          [first]/[last] flags are meaningless ([false]); message
          delimiters travel per frame. Gateways forward aggregates
          without looking inside — only the final destination unpacks
          the train. Never set without a scheduler — the wire format is
          then unchanged. *)
  top : bool;
      (** Topology-control packet for live-topology vchannels (clusterfile
          [version=] set): a join request / join acknowledgment / drain
          notice addressed to the coordinator or to a member (see
          {!Vchannel.join} / {!Vchannel.drain}). The payload carries an
          opcode byte, the subject rank, and the epoch, all little-endian;
          gateways forward it like data. Never set without a live
          topology — the wire format is then unchanged. *)
  col : bool;
      (** Collective-control packet for vchannels with a {!Collectives}
          layer attached: a contribution travelling up a spanning tree
          (possibly already combining several descendants' values), a
          decision travelling down it, or an all-to-all block. The payload
          carries a kind byte, the collective id, the repair generation,
          and the operand bytes, all little-endian; gateways forward it
          like data. Never set without a collectives layer — the wire
          format is then unchanged. *)
}

val header_size : int
val encode_header : packet_header -> Bytes.t
val decode_header : Bytes.t -> packet_header
(** Raises [Invalid_argument] on a corrupt header. *)

val sub_header_size : int

val encode_sub_header :
  len:int -> Iface.send_mode -> Iface.recv_mode -> Bytes.t

val decode_sub_header : Bytes.t -> int * Iface.send_mode * Iface.recv_mode

(** {1 Flow frames}

    The third level of description, present only inside [agg] packets: a
    {e flow frame header} in front of each constituent sub-packet. It
    carries the 16-bit logical-flow id (multiplexing thousands of logical
    channels over the few physical connections), the frame's payload
    length, and the first/last message delimiters that the outer packet
    header carries for unaggregated traffic. *)

val flow_frame_header_size : int

val encode_flow_frame_header :
  flow:int -> first:bool -> last:bool -> len:int -> Bytes.t
(** Raises [Invalid_argument] when [flow] does not fit in 16 bits. *)

val decode_flow_frame_header : Bytes.t -> int -> int * bool * bool * int
(** [decode_flow_frame_header payload off] reads the frame header at
    byte offset [off] and returns [(flow, first, last, len)]; the frame's
    payload follows at [off + flow_frame_header_size]. Raises
    [Invalid_argument] on a corrupt or truncated header. *)
