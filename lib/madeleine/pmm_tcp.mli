(** Protocol Management Module for TCP (paper §7 lists TCP among the
    supported interfaces).

    One dynamic-buffer transmission module per link with scatter-gather
    grouping (writev/readv), so the aggregating BMM amortizes the Linux
    2.2 kernel's per-call cost across grouped buffers. One
    pre-established stream per node pair per channel carries both
    directions. *)

val select : len:int -> transit:bool -> Iface.send_mode -> Iface.recv_mode -> int
val driver : (int -> Tcpnet.t) -> Driver.t
