(** Pluggable packet scheduler for the Vchannel pack path.

    NewMadeleine's core lesson, transplanted: instead of handing every
    staged packet straight to the transfer modules, the pack path can
    route it through an optimizing scheduler built from two tactics —
    {e aggregation} (merge many small pending packets from concurrent
    logical flows into one wire packet, amortizing the per-packet
    gateway and protocol overheads) and {e reordering} (let a
    rendezvous-class bulk packet overtake other flows' buffered small
    frames, so large transfers overlap small-message trains instead of
    queueing behind them).

    A {!strategy} picks the tactic set. [Fifo] is the identity
    scheduler: packets ship exactly as the unscheduled library ships
    them, byte-identical on the wire. [Aggreg] buffers sub-MTU frames
    per (source, destination) pair and flushes a merged aggregate when
    the [aggr_max] byte budget fills, when the oldest buffered frame
    reaches the [aggr_flush] deadline, on an explicit barrier
    ({!flush_pair}/{!flush_all}), or when per-flow FIFO requires it (a
    bulk packet on a flow with buffered small frames must not overtake
    its own flow).

    The module owns only classification, queueing and flush policy; the
    vchannel supplies [emit], which charges credits per constituent
    frame, numbers the aggregate (one go-back-N window slot per wire
    packet) and ships it. Emission for one pair is serialized by
    {!pair_lock} so aggregates leave in a well-defined order —
    re-emission after a crash takes the same lock. *)

type strategy =
  | Fifo
  | Aggreg of {
      aggr_max : int option;
          (** Wire-payload byte budget of one aggregate, frame headers
              included. Defaults to the vchannel's MTU. *)
      aggr_flush : Marcel.Time.span option;
          (** Deadline: a buffered frame never waits longer than this
              before its pair is flushed. Defaults to
              {!Config.default_aggr_flush}. *)
    }

val fifo : strategy

val aggreg : ?aggr_max:int -> ?aggr_flush:Marcel.Time.span -> unit -> strategy

type frame = {
  fr_flow : int;  (** logical-flow id, 16 bits *)
  fr_first : bool;  (** first frame of its message *)
  fr_last : bool;  (** last frame of its message *)
  fr_data : Bytes.t;  (** staged payload (sub-headers included) *)
}

type stats = {
  sched_frames : int;  (** frames submitted to the scheduler *)
  sched_merged : int;  (** frames that shared a wire packet with another *)
  sched_aggregates : int;  (** wire data packets emitted *)
  sched_mean_frames : float;  (** mean frames per wire packet *)
  sched_flush_full : int;  (** flushes forced by the [aggr_max] budget *)
  sched_flush_deadline : int;  (** flushes forced by the [aggr_flush] age *)
  sched_flush_barrier : int;  (** explicit {!flush_pair}/{!flush_all} *)
  sched_flush_flow : int;
      (** flushes forced by per-flow FIFO: a bulk frame arrived on a
          flow that still had buffered small frames *)
}

type t

val create :
  Marcel.Engine.t ->
  aggr_max:int ->
  aggr_flush:Marcel.Time.span ->
  emit:(src:int -> dst:int -> frame list -> unit) ->
  t
(** [emit] is called with {!pair_lock} held and the frames in submission
    order; it may block (credits, go-back-N window, route holes) and may
    raise — a raise drops the batch and propagates to whoever forced the
    flush (deadline flushes run in daemons that swallow terminal
    delivery errors, mirroring the ack/grant daemons). *)

val submit : t -> src:int -> dst:int -> bulk:bool -> frame -> unit
(** Hand one staged frame to the scheduler. [bulk] marks
    rendezvous-class traffic (a message whose first frame filled the
    MTU): it ships immediately as a single-frame wire packet, overtaking
    other flows' buffered frames — after flushing its own flow's if any
    are pending. Small frames buffer until a flush rule fires; when
    adding the frame would overflow [aggr_max], the pending batch is
    flushed first (synchronously, so the caller feels the
    backpressure). *)

val flush_pair : t -> src:int -> dst:int -> unit
(** Barrier flush of one pair's pending frames. No-op when empty. *)

val flush_all : t -> src:int -> unit
(** Barrier flush of every pair originating at [src]. *)

val pair_lock : t -> src:int -> dst:int -> Marcel.Mutex.t
(** The pair's emission lock, for external serialization against
    in-flight aggregates (the vchannel's crash re-emission path). *)

val stats : t -> stats
