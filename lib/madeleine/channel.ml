module Engine = Marcel.Engine
module Mutex = Marcel.Mutex

type t = {
  chan_id : int;
  mutable chan_config : Config.t;
  chan_ranks : int list;
  inst : Driver.instance;
  endpoints : (int, endpoint) Hashtbl.t;
  sym :
    (int * int, (int * Iface.send_mode * Iface.recv_mode) Marcel.Mailbox.t)
    Hashtbl.t;
  usage : (int, int ref * int ref) Hashtbl.t; (* tm -> (packets, bytes) *)
}

and endpoint = {
  ep_channel : t;
  ep_rank : int;
  mutable arrival_waiters : (unit -> unit) list;
  mutable scan_from : int; (* rotation cursor for fair any-source scans *)
}

let create session driver ?(config = Config.default) ~ranks () =
  (match ranks with
  | [] | [ _ ] -> invalid_arg "Channel.create: need at least two ranks"
  | _ -> ());
  let sorted = List.sort_uniq compare ranks in
  if List.length sorted <> List.length ranks then
    invalid_arg "Channel.create: duplicate ranks";
  let chan_id = Session.fresh_channel_id session in
  let inst = driver.Driver.instantiate ~channel_id:chan_id ~config ~ranks:sorted in
  let t =
    {
      chan_id;
      chan_config = config;
      chan_ranks = sorted;
      inst;
      endpoints = Hashtbl.create 8;
      sym = Hashtbl.create 16;
      usage = Hashtbl.create 8;
    }
  in
  List.iter
    (fun rank ->
      let ep =
        { ep_channel = t; ep_rank = rank; arrival_waiters = []; scan_from = 0 }
      in
      Hashtbl.add t.endpoints rank ep;
      inst.Driver.on_data ~me:rank (fun () ->
          let waiters = ep.arrival_waiters in
          ep.arrival_waiters <- [];
          List.iter (fun wake -> wake ()) waiters))
    sorted;
  t

let config t = t.chan_config

(* A reliable vchannel re-emits packets after crashes and abandons
   partially-unpacked ones, so the strict FIFO pack/unpack mirror behind
   [checked] no longer holds on its real channels; the Generic TM
   sub-headers carry the same symmetry information end-to-end instead. *)
let relax_checked t = t.chan_config <- { t.chan_config with Config.checked = false }
let ranks t = t.chan_ranks
let id t = t.chan_id
let fabric t = t.inst.Driver.inst_fabric

let endpoint t ~rank =
  match Hashtbl.find_opt t.endpoints rank with
  | Some ep -> ep
  | None -> raise Not_found

let endpoint_rank ep = ep.ep_rank
let endpoint_channel ep = ep.ep_channel

let check_remote t remote =
  if not (List.mem remote t.chan_ranks) then
    invalid_arg (Printf.sprintf "Madeleine: rank %d not in channel" remote)

let peer_health ep ~remote =
  check_remote ep.ep_channel remote;
  ep.ep_channel.inst.Driver.peer_health ~me:ep.ep_rank ~peer:remote

let reg_stats ep = ep.ep_channel.inst.Driver.reg_stats ~me:ep.ep_rank

let sender_link ep ~remote =
  check_remote ep.ep_channel remote;
  if remote = ep.ep_rank then invalid_arg "Madeleine: cannot connect to self";
  ep.ep_channel.inst.Driver.sender_link ~src:ep.ep_rank ~dst:remote

let receiver_link ep ~from =
  check_remote ep.ep_channel from;
  if from = ep.ep_rank then invalid_arg "Madeleine: cannot connect to self";
  ep.ep_channel.inst.Driver.receiver_link ~me:ep.ep_rank ~from

(* Scan peers round-robin for an idle link with visible data; sleep on the
   endpoint's arrival board between rounds. The probe and the subsequent
   lock happen without yielding, so the found link cannot be stolen. *)
let wait_any_arrival ep =
  let peers =
    List.filter (fun r -> r <> ep.ep_rank) ep.ep_channel.chan_ranks
  in
  let n = List.length peers in
  let peer_at i = List.nth peers (i mod n) in
  let rec scan tries =
    if tries >= n then begin
      Engine.suspend ~name:"mad.begin_unpacking" (fun wake ->
          ep.arrival_waiters <- (fun () -> wake ()) :: ep.arrival_waiters);
      scan 0
    end
    else begin
      let from = peer_at (ep.scan_from + tries) in
      let link = receiver_link ep ~from in
      if (not (Mutex.locked link.Link.r_mutex)) && link.Link.r_probe () then begin
        ep.scan_from <- ep.scan_from + tries + 1;
        from
      end
      else scan (tries + 1)
    end
  in
  scan 0

let record_usage t ~tm ~bytes_count =
  let packets, bytes =
    match Hashtbl.find_opt t.usage tm with
    | Some entry -> entry
    | None ->
        let entry = (ref 0, ref 0) in
        Hashtbl.add t.usage tm entry;
        entry
  in
  incr packets;
  bytes := !bytes + bytes_count

let tm_usage t =
  Hashtbl.fold (fun tm (p, b) acc -> (tm, !p, !b) :: acc) t.usage []
  |> List.sort compare

let sym_queue t key =
  match Hashtbl.find_opt t.sym key with
  | Some q -> q
  | None ->
      let q = Marcel.Mailbox.create () in
      Hashtbl.add t.sym key q;
      q

let sym_push t ~src ~dst entry = Marcel.Mailbox.put (sym_queue t (src, dst)) entry

(* The check blocks (without simulated cost) until the matching pack has
   executed: an unpack may legitimately run earlier in virtual time than
   its pack, since extraction itself would block on the data anyway. *)
let sym_check t ~src ~dst (len, s, r) =
  match Marcel.Mailbox.take (sym_queue t (src, dst)) with
  | (len', s', r') ->
      if len <> len' || s <> s' || r <> r' then
        raise
          (Config.Symmetry_violation
             (Format.asprintf
                "pack/unpack mismatch on %d->%d: packed (%d, %a, %a) but \
                 unpacked (%d, %a, %a)"
                src dst len' Iface.pp_send_mode s' Iface.pp_recv_mode r' len
                Iface.pp_send_mode s Iface.pp_recv_mode r))
