(** Sender-side registration (pin-down) cache for zero-copy RDMA.

    Registering a buffer with the NIC (pinning its pages and installing
    bus translations) is expensive — a fixed base plus a per-page walk
    ({!Simnet.Cost.pin}) — while applications overwhelmingly resend from
    the same buffers. Following the MPICH2-over-InfiniBand design, the
    cache keeps registrations alive after use in an LRU of
    (buffer, interval) entries:

    - a request covered by a cached interval on the {e same} buffer
      (physical identity) is a {b hit} — no pin charged;
    - a request partially overlapping cached intervals {b merges} them
      with the request into a single hull registration, so an overlap
      is never pinned twice;
    - capacity pressure (entry count, or an optional pinned-bytes
      budget) {b evicts} cold idle entries, deregistering them.

    With capacity 0 the cache degenerates to register-per-send:
    {!acquire} registers, {!release} deregisters, nothing is retained.
    Entries referenced by an in-flight transfer are never evicted or
    merged away. The cache is fabric-agnostic: it is parameterized over
    the fabric's register/deregister operations and the opaque
    registration handle they return. *)

type 'r t
(** A cache of registrations of type ['r] (e.g. [Sisci.region]). *)

type 'r entry
(** A cached (or, at capacity 0, transient) registration covering at
    least the interval passed to {!acquire}. *)

type stats = {
  hits : int;  (** requests served by a live registration *)
  misses : int;  (** requests that charged a pin (includes merges) *)
  evictions : int;  (** entries deregistered under capacity pressure *)
  merges : int;  (** partial overlaps collapsed into hull registrations *)
  pinned_bytes : int;  (** bytes currently registered through the cache *)
  entries : int;  (** registrations currently cached *)
}

val create :
  ?entries:int ->
  ?bytes:int ->
  register:(Bytes.t -> pos:int -> len:int -> 'r) ->
  deregister:('r -> unit) ->
  unit ->
  'r t
(** [entries] (default 0) caps cached registrations; 0 disables caching
    (register-per-send). [bytes], if given, additionally caps the total
    pinned bytes. Raises [Invalid_argument] on a negative entry cap or
    a non-positive byte cap. *)

val acquire : 'r t -> Bytes.t -> pos:int -> len:int -> 'r entry
(** Returns an entry whose registration covers [pos, pos+len) of the
    buffer, registering (and charging the pin) only on a miss. The
    entry is held (protected from eviction) until {!release}d. *)

val release : 'r t -> 'r entry -> unit
(** Ends the caller's use of the entry. The registration is retained
    for reuse — except at capacity 0, where it is deregistered
    immediately. Raises [Invalid_argument] if the entry is not held. *)

val handle : 'r entry -> 'r
(** The fabric registration backing the entry. Its interval may be
    larger than requested (a merged hull). *)

val interval : 'r entry -> int * int
(** [(pos, len)] actually registered — the hull after any merge. *)

val flush : 'r t -> unit
(** Deregisters every idle cached entry (counted as evictions). Held
    entries survive. *)

val stats : 'r t -> stats
