(* Protocol Management Module for SBP, the static-buffer kernel protocol.

   The worst case for buffer management: protocol-owned buffers on both
   sides (paper §6.1). The sender stages into a pool buffer obtained from
   SBP (blocking on the pool: natural back-pressure), the receiver copies
   out of the delivered pool buffer and releases it. *)

let memcpy_sleep = Simnet.Cost.memcpy

let capacity = Config.sbp_slot_payload

let send_tm host ~dst ~tag =
  let current = ref None in
  let fill = ref 0 in
  {
    Tm.s_name = "sbp";
    s_side =
      Tm.Static_send
        {
          Tm.send_capacity = capacity;
          obtain_static_buffer =
            (fun () ->
              current := Some (Sbp.obtain_buffer host);
              fill := 0);
          write_static =
            (fun buf ->
              match !current with
              | None -> invalid_arg "sbp TM: write without obtained buffer"
              | Some slot ->
                  memcpy_sleep (Buf.length buf);
                  Buf.blit_out buf slot !fill;
                  fill := !fill + Buf.length buf);
          ship_static =
            (fun () ->
              match !current with
              | None -> invalid_arg "sbp TM: ship without obtained buffer"
              | Some slot ->
                  Sbp.send host ~dst ~tag slot ~len:!fill;
                  Sbp.release_buffer host slot;
                  current := None;
                  fill := 0);
        };
  }

let recv_tm host ~from ~tag =
  let current = ref None in
  let read_off = ref 0 in
  {
    Tm.r_name = "sbp";
    r_side =
      Tm.Static_recv
        {
          Tm.recv_capacity = capacity;
          fetch_static =
            (fun () ->
              let buf, len = Sbp.recv host ~src:from ~tag in
              current := Some buf;
              read_off := 0;
              len);
          read_static =
            (fun buf ->
              match !current with
              | None -> invalid_arg "sbp TM: read without fetched buffer"
              | Some slot ->
                  memcpy_sleep (Buf.length buf);
                  Buf.blit_in buf slot !read_off;
                  read_off := !read_off + Buf.length buf);
          consume_static =
            (fun () ->
              match !current with
              | None -> ()
              | Some slot ->
                  Sbp.release_buffer host slot;
                  current := None);
        };
    r_probe = (fun () -> Sbp.probe host ~src:from ~tag);
  }

let select ~len:_ ~transit:_ _s _r = 0

let driver (host_of : int -> Sbp.t) =
  let instantiate ~channel_id ~config ~ranks:_ =
    let tag = channel_id in
    let sender_link =
      Driver.memo_links (fun ~src ~dst ->
          Link.make_sender select
            [|
              Bmm.send_of_tm ~aggregation:config.Config.aggregation
                (send_tm (host_of src) ~dst ~tag);
            |])
    in
    let receiver_link =
      Driver.memo_links (fun ~src ~dst ->
          let tm = recv_tm (host_of src) ~from:dst ~tag in
          Link.make_receiver select [| Bmm.recv_of_tm tm |] ~probe:tm.Tm.r_probe)
    in
    {
      Driver.inst_name = "sbp";
      inst_fabric = None;
      sender_link;
      receiver_link = (fun ~me ~from -> receiver_link ~src:me ~dst:from);
      on_data = (fun ~me hook -> Sbp.set_data_hook (host_of me) hook);
      peer_health = (fun ~me:_ ~peer:_ -> Iface.Up);
      reg_stats = (fun ~me:_ -> None);
    }
  in
  { Driver.driver_name = "sbp"; instantiate }
