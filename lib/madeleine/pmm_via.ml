(* Protocol Management Module for VIA.

   VIA receives land in pre-posted registered buffers, so both directions
   go through the static-buffer machinery: one TM whose slots are VIA
   descriptors of up to 32 kB. The receiver keeps a constant window of
   descriptors posted, re-posting each buffer as it is consumed. *)

let memcpy_sleep = Simnet.Cost.memcpy

let capacity = Config.via_slot_payload

let send_tm vi =
  let staging = Bytes.create capacity in
  let fill = ref 0 in
  {
    Tm.s_name = "via";
    s_side =
      Tm.Static_send
        {
          Tm.send_capacity = capacity;
          (* Via.send blocks until the peer has a descriptor posted. *)
          obtain_static_buffer = (fun () -> ());
          write_static =
            (fun buf ->
              memcpy_sleep (Buf.length buf);
              Buf.blit_out buf staging !fill;
              fill := !fill + Buf.length buf);
          ship_static =
            (fun () ->
              Via.send vi staging ~len:!fill;
              fill := 0);
        };
  }

let recv_tm vi =
  (* Keep a window of descriptors posted at all times. *)
  for _ = 1 to Config.via_posted_descriptors do
    Via.post_recv vi (Bytes.create capacity)
  done;
  let current = ref Bytes.empty in
  let read_off = ref 0 in
  {
    Tm.r_name = "via";
    r_side =
      Tm.Static_recv
        {
          Tm.recv_capacity = capacity;
          fetch_static =
            (fun () ->
              let buf, len = Via.recv_wait vi in
              current := buf;
              read_off := 0;
              len);
          read_static =
            (fun buf ->
              memcpy_sleep (Buf.length buf);
              Buf.blit_in buf !current !read_off;
              read_off := !read_off + Buf.length buf);
          consume_static = (fun () -> Via.post_recv vi !current);
        };
    r_probe = (fun () -> Via.completions_available vi > 0);
  }

let select ~len:_ _s _r = 0

let driver (host_of : int -> Via.t) =
  let instantiate ~channel_id:_ ~config ~ranks =
    (* One VI pair per ordered... per unordered node pair; each VI serves
       its end's sends and receives. *)
    let vis = Hashtbl.create 16 in
    let rec all_pairs = function
      | [] -> ()
      | a :: rest ->
          List.iter
            (fun b ->
              let va = Via.create_vi (host_of a) in
              let vb = Via.create_vi (host_of b) in
              Via.vi_connect va vb;
              Hashtbl.add vis (a, b) va;
              Hashtbl.add vis (b, a) vb)
            rest;
          all_pairs rest
    in
    all_pairs ranks;
    let vi_of ~me ~peer = Hashtbl.find vis (me, peer) in
    let sender_link =
      Driver.memo_links (fun ~src ~dst ->
          Link.make_sender select
            [|
              Bmm.send_of_tm ~aggregation:config.Config.aggregation
                (send_tm (vi_of ~me:src ~peer:dst));
            |])
    in
    let receiver_link =
      Driver.memo_links (fun ~src ~dst ->
          let tm = recv_tm (vi_of ~me:src ~peer:dst) in
          Link.make_receiver select [| Bmm.recv_of_tm tm |] ~probe:tm.Tm.r_probe)
    in
    {
      Driver.inst_name = "via";
      inst_fabric = None;
      sender_link;
      receiver_link = (fun ~me ~from -> receiver_link ~src:me ~dst:from);
      on_data =
        (fun ~me hook ->
          Hashtbl.iter
            (fun (owner, _) vi -> if owner = me then Via.set_data_hook vi hook)
            vis);
      peer_health = (fun ~me:_ ~peer:_ -> Iface.Up);
    }
  in
  { Driver.driver_name = "via"; instantiate }
