(* Protocol Management Module for VIA.

   VIA receives land in pre-posted registered buffers, so both directions
   go through the static-buffer machinery: one TM whose slots are VIA
   descriptors of up to 32 kB. The receiver keeps a constant window of
   descriptors posted, re-posting each buffer as it is consumed.

   TM 1, "via-rdv", is the zero-copy long-message path (selected above
   [rendezvous_threshold], never on gateway transit hops): a dedicated
   control VI pair carries the RTS (announced length), the CTS (the
   cookie of the receiver's registered and exposed user buffer) and the
   DONE notification, while the payload moves in a single one-sided
   RDMA write from the sender's registered buffer — no 32 kB descriptor
   chunking, no staging copy on either host. Sender registrations come
   from the per-rank pin-down cache (Regcache). *)

let memcpy_sleep = Simnet.Cost.memcpy

let capacity = Config.via_slot_payload

(* Control messages are told apart by construction: the protocol is a
   strict RTS -> CTS -> DONE cycle per buffer, and the control VI pair
   carries nothing else. *)
let rdv_ctl_size = 8
let rdv_ctl_posted = 4

let send_tm vi =
  let staging = Bytes.create capacity in
  let fill = ref 0 in
  {
    Tm.s_name = "via";
    s_side =
      Tm.Static_send
        {
          Tm.send_capacity = capacity;
          (* Via.send blocks until the peer has a descriptor posted. *)
          obtain_static_buffer = (fun () -> ());
          write_static =
            (fun buf ->
              memcpy_sleep (Buf.length buf);
              Buf.blit_out buf staging !fill;
              fill := !fill + Buf.length buf);
          ship_static =
            (fun () ->
              Via.send vi staging ~len:!fill;
              fill := 0);
        };
  }

let recv_tm vi =
  (* Keep a window of descriptors posted at all times. *)
  for _ = 1 to Config.via_posted_descriptors do
    Via.post_recv vi (Bytes.create capacity)
  done;
  let current = ref Bytes.empty in
  let read_off = ref 0 in
  {
    Tm.r_name = "via";
    r_side =
      Tm.Static_recv
        {
          Tm.recv_capacity = capacity;
          fetch_static =
            (fun () ->
              let buf, len = Via.recv_wait vi in
              current := buf;
              read_off := 0;
              len);
          read_static =
            (fun buf ->
              memcpy_sleep (Buf.length buf);
              Buf.blit_in buf !current !read_off;
              read_off := !read_off + Buf.length buf);
          consume_static = (fun () -> Via.post_recv vi !current);
        };
    r_probe = (fun () -> Via.completions_available vi > 0);
  }

let select ~config ~len ~transit _s _r =
  match config.Config.rendezvous_threshold with
  | Some threshold when (not transit) && len >= threshold -> 1
  | _ -> 0

let ctl_expect what got want =
  if got <> want then
    raise
      (Config.Symmetry_violation
         (Printf.sprintf "via rendezvous: %s message of %d bytes, expected %d"
            what got want))

let rdv_send_tm ~ctl ~cache =
  let rts = Bytes.create 4 in
  let done_msg = Bytes.make 1 '\001' in
  let send_one buf =
    let len = Buf.length buf in
    Bytes.set_int32_le rts 0 (Int32.of_int len);
    Via.send ctl rts ~len:4;
    let cbuf, clen = Via.recv_wait ctl in
    ctl_expect "CTS" clen 4;
    let cookie = Bytes.get_int32_le cbuf 0 |> Int32.to_int in
    Via.post_recv ctl cbuf;
    let entry = Regcache.acquire cache buf.Buf.data ~pos:buf.Buf.off ~len in
    Via.rdma_write ctl (Regcache.handle entry) ~pos:buf.Buf.off ~len ~cookie;
    Via.send ctl done_msg ~len:1;
    Regcache.release cache entry
  in
  {
    Tm.s_name = "via-rdv";
    s_side =
      Tm.Dynamic_send
        {
          Tm.send_buffer = send_one;
          send_buffer_group = (fun bufs -> Bufs.iter send_one bufs);
        };
  }

let rdv_recv_tm ~host ~ctl =
  let cts = Bytes.create 4 in
  let recv_one buf =
    let rbuf, rlen = Via.recv_wait ctl in
    ctl_expect "RTS" rlen 4;
    let advertised = Bytes.get_int32_le rbuf 0 |> Int32.to_int in
    Via.post_recv ctl rbuf;
    if advertised <> Buf.length buf then
      raise
        (Config.Symmetry_violation
           (Printf.sprintf
              "rendezvous length mismatch: sender announced %d bytes, \
               receiver unpacked %d" advertised (Buf.length buf)));
    let region =
      Via.register host buf.Buf.data ~pos:buf.Buf.off ~len:(Buf.length buf)
    in
    let cookie = Via.expose host region in
    Bytes.set_int32_le cts 0 (Int32.of_int cookie);
    Via.send ctl cts ~len:4;
    let dbuf, dlen = Via.recv_wait ctl in
    ctl_expect "DONE" dlen 1;
    Via.post_recv ctl dbuf;
    Via.retract host ~cookie;
    Via.deregister region
  in
  {
    Tm.r_name = "via-rdv";
    r_side =
      Tm.Dynamic_recv
        {
          Tm.receive_buffer = recv_one;
          receive_buffer_group = (fun bufs -> Bufs.iter recv_one bufs);
        };
    r_probe = (fun () -> Via.completions_available ctl > 0);
  }

let driver (host_of : int -> Via.t) =
  let instantiate ~channel_id:_ ~config ~ranks =
    (* One VI pair per ordered... per unordered node pair; each VI serves
       its end's sends and receives. *)
    let vis = Hashtbl.create 16 in
    let ctls = Hashtbl.create 16 in
    let rec all_pairs = function
      | [] -> ()
      | a :: rest ->
          List.iter
            (fun b ->
              let va = Via.create_vi (host_of a) in
              let vb = Via.create_vi (host_of b) in
              Via.vi_connect va vb;
              Hashtbl.add vis (a, b) va;
              Hashtbl.add vis (b, a) vb;
              let ca = Via.create_vi (host_of a) in
              let cb = Via.create_vi (host_of b) in
              Via.vi_connect ca cb;
              for _ = 1 to rdv_ctl_posted do
                Via.post_recv ca (Bytes.create rdv_ctl_size);
                Via.post_recv cb (Bytes.create rdv_ctl_size)
              done;
              Hashtbl.add ctls (a, b) ca;
              Hashtbl.add ctls (b, a) cb)
            rest;
          all_pairs rest
    in
    all_pairs ranks;
    let vi_of ~me ~peer = Hashtbl.find vis (me, peer) in
    let ctl_of ~me ~peer = Hashtbl.find ctls (me, peer) in
    let caches = Hashtbl.create 8 in
    let cache_of rank =
      match Hashtbl.find_opt caches rank with
      | Some c -> c
      | None ->
          let host = host_of rank in
          let c =
            Regcache.create ~entries:config.Config.regcache_entries
              ?bytes:config.Config.regcache_bytes
              ~register:(Via.register host) ~deregister:Via.deregister ()
          in
          Hashtbl.add caches rank c;
          c
    in
    let sel ~len ~transit s r = select ~config ~len ~transit s r in
    let sender_link =
      Driver.memo_links (fun ~src ~dst ->
          Link.make_sender sel
            [|
              Bmm.send_of_tm ~aggregation:config.Config.aggregation
                (send_tm (vi_of ~me:src ~peer:dst));
              Bmm.send_of_tm ~aggregation:config.Config.aggregation
                (rdv_send_tm
                   ~ctl:(ctl_of ~me:src ~peer:dst)
                   ~cache:(cache_of src));
            |])
    in
    let receiver_link =
      Driver.memo_links (fun ~src ~dst ->
          let tm = recv_tm (vi_of ~me:src ~peer:dst) in
          let rdv =
            rdv_recv_tm ~host:(host_of src) ~ctl:(ctl_of ~me:src ~peer:dst)
          in
          let tms = [| tm; rdv |] in
          let probe () = Array.exists (fun t -> t.Tm.r_probe ()) tms in
          Link.make_receiver sel (Array.map Bmm.recv_of_tm tms) ~probe)
    in
    {
      Driver.inst_name = "via";
      inst_fabric = None;
      sender_link;
      receiver_link = (fun ~me ~from -> receiver_link ~src:me ~dst:from);
      on_data =
        (fun ~me hook ->
          Hashtbl.iter
            (fun (owner, _) vi -> if owner = me then Via.set_data_hook vi hook)
            vis;
          Hashtbl.iter
            (fun (owner, _) vi -> if owner = me then Via.set_data_hook vi hook)
            ctls);
      peer_health = (fun ~me:_ ~peer:_ -> Iface.Up);
      reg_stats =
        (fun ~me -> Option.map Regcache.stats (Hashtbl.find_opt caches me));
    }
  in
  { Driver.driver_name = "via"; instantiate }
