(* Protocol Management Module for BIP/Myrinet (paper §5.2.2).

   Two transmission modules, mirroring BIP's two modes:
   - TM 0, "bip-short": small packets aggregate into a static staging
     buffer of one BIP short message; BIP's own credit window provides
     the flow control. The staging copy is a real memcpy.
   - TM 1, "bip-long": dynamic buffers, one receiver-acknowledged
     rendezvous per buffer, zero-copy into the destination. *)

module Engine = Marcel.Engine

let memcpy_sleep = Simnet.Cost.memcpy

let short_tag channel_id = (channel_id * 4) + 0
let long_tag channel_id = (channel_id * 4) + 1
let short_capacity = Config.bip_short_payload

let send_short_tm endpoint ~dst ~tag =
  let staging = Bytes.create short_capacity in
  let fill = ref 0 in
  {
    Tm.s_name = "bip-short";
    s_side =
      Tm.Static_send
        {
          Tm.send_capacity = short_capacity;
          (* Flow control lives inside Bip.send's credit window. *)
          obtain_static_buffer = (fun () -> ());
          write_static =
            (fun buf ->
              memcpy_sleep (Buf.length buf);
              Buf.blit_out buf staging !fill;
              fill := !fill + Buf.length buf);
          ship_static =
            (fun () ->
              Bip.send endpoint ~dst ~tag (Bytes.sub staging 0 !fill);
              fill := 0);
        };
  }

(* BIP long messages land at their final destination, so an offset view
   costs nothing: the extra blit below is simulation bookkeeping with no
   modelled time. *)
let send_long_tm endpoint ~dst ~tag =
  let send_one buf = Bip.send endpoint ~dst ~tag (Buf.to_bytes buf) in
  {
    Tm.s_name = "bip-long";
    s_side =
      Tm.Dynamic_send
        {
          Tm.send_buffer = send_one;
          send_buffer_group = (fun bufs -> Bufs.iter send_one bufs);
        };
  }

let recv_short_tm endpoint ~from ~tag =
  let staging = Bytes.create short_capacity in
  let read_off = ref 0 in
  {
    Tm.r_name = "bip-short";
    r_side =
      Tm.Static_recv
        {
          Tm.recv_capacity = short_capacity;
          fetch_static =
            (fun () ->
              let len = Bip.recv endpoint ~src:from ~tag ~len:0 staging in
              read_off := 0;
              len);
          read_static =
            (fun buf ->
              memcpy_sleep (Buf.length buf);
              Buf.blit_in buf staging !read_off;
              read_off := !read_off + Buf.length buf);
          consume_static = (fun () -> ());
        };
    r_probe = (fun () -> Bip.probe endpoint ~src:from ~tag);
  }

let recv_long_tm endpoint ~from ~tag =
  let recv_one buf =
    let tmp = Bytes.create (Buf.length buf) in
    let len =
      Bip.recv endpoint ~src:from ~tag ~len:(Buf.length buf) tmp
    in
    if len <> Buf.length buf then
      raise
        (Config.Symmetry_violation
           (Printf.sprintf "bip-long: expected %d bytes, got %d"
              (Buf.length buf) len));
    Buf.blit_in buf tmp 0
  in
  {
    Tm.r_name = "bip-long";
    r_side =
      Tm.Dynamic_recv
        {
          Tm.receive_buffer = recv_one;
          receive_buffer_group = (fun bufs -> Bufs.iter recv_one bufs);
        };
    r_probe = (fun () -> Bip.probe endpoint ~src:from ~tag);
  }

(* The Switch's query (paper Fig. 3, step 2): short messages take the
   optimized buffered path, everything else the rendezvous path. *)
let select ~len ~transit:_ _s _r = if len < Simnet.Netparams.bip_short_max then 0 else 1

let driver (endpoint_of : int -> Bip.t) =
  let instantiate ~channel_id ~config ~ranks:_ =
    let sender_link =
      Driver.memo_links (fun ~src ~dst ->
          let ep = endpoint_of src in
          let tms =
            [|
              send_short_tm ep ~dst ~tag:(short_tag channel_id);
              send_long_tm ep ~dst ~tag:(long_tag channel_id);
            |]
          in
          Link.make_sender select
            (Array.map (Bmm.send_of_tm ~aggregation:config.Config.aggregation) tms))
    in
    let receiver_link =
      Driver.memo_links (fun ~src ~dst ->
          let ep = endpoint_of src in
          let tms =
            [|
              recv_short_tm ep ~from:dst ~tag:(short_tag channel_id);
              recv_long_tm ep ~from:dst ~tag:(long_tag channel_id);
            |]
          in
          let probe () = Array.exists (fun tm -> tm.Tm.r_probe ()) tms in
          Link.make_receiver select (Array.map Bmm.recv_of_tm tms) ~probe)
    in
    {
      Driver.inst_name = "bip";
      inst_fabric = None;
      sender_link;
      receiver_link = (fun ~me ~from -> receiver_link ~src:me ~dst:from);
      on_data = (fun ~me hook -> Bip.set_data_hook (endpoint_of me) hook);
      peer_health = (fun ~me:_ ~peer:_ -> Iface.Up);
      reg_stats = (fun ~me:_ -> None);
    }
  in
  { Driver.driver_name = "bip"; instantiate }
