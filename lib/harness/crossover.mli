(** Measured eager/rendezvous crossover points.

    `madbench crossover` bisects, per fabric, the message size where
    the zero-copy rendezvous path breaks even with the staged eager
    path, and persists the result in [BENCH_crossover.json]. This
    module reads it back for consumers that want an auto-tuned
    threshold — notably the clusterfile key [rendezvous=auto]. *)

val default_file : string
(** ["BENCH_crossover.json"], resolved against the working directory. *)

val load : ?file:string -> unit -> (string * int) list
(** [(fabric, crossover_bytes)] for every fabric recorded in the file;
    [[]] if the file does not exist. *)

val lookup : ?file:string -> fabric:string -> unit -> int option
(** The measured crossover for one fabric (e.g. ["sisci"]), if any. *)
