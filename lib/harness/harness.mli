(** Shared simulated testbeds and the paper's measurement methodology.

    Both the integration/property tests and the benchmark harness build
    their worlds here: two-node single-network clusters for the §5
    micro-benchmarks, the §6.2 two-cluster + gateway configuration, and
    the MPI/Nexus stacks of §5.3. All measurements follow the paper:
    one-way times from ping-pong averages. *)

val payload : int -> int64 -> Bytes.t
(** Deterministic pseudo-random payload (seeded). *)

(** {1 Single-network Madeleine worlds} *)

type world = {
  engine : Marcel.Engine.t;
  session : Madeleine.Session.t;
  channel : Madeleine.Channel.t;
}

val make_world :
  ?config:Madeleine.Config.t ->
  n:int ->
  (Marcel.Engine.t -> Simnet.Fabric.t -> Simnet.Node.t list -> Madeleine.Driver.t) ->
  Simnet.Netparams.link ->
  world
(** [n] nodes on one fabric, one channel over the driver the callback
    builds. *)

val bip_driver :
  Marcel.Engine.t -> Simnet.Fabric.t -> Simnet.Node.t list -> Madeleine.Driver.t

val sisci_driver :
  Marcel.Engine.t -> Simnet.Fabric.t -> Simnet.Node.t list -> Madeleine.Driver.t

val tcp_driver :
  Marcel.Engine.t -> Simnet.Fabric.t -> Simnet.Node.t list -> Madeleine.Driver.t

val via_driver :
  Marcel.Engine.t -> Simnet.Fabric.t -> Simnet.Node.t list -> Madeleine.Driver.t

val sbp_driver :
  Marcel.Engine.t -> Simnet.Fabric.t -> Simnet.Node.t list -> Madeleine.Driver.t

val bip_world : ?config:Madeleine.Config.t -> unit -> world
(** Two nodes on Myrinet with BIP. *)

val sisci_world : ?config:Madeleine.Config.t -> unit -> world
val tcp_world : ?config:Madeleine.Config.t -> unit -> world
val via_world : ?config:Madeleine.Config.t -> unit -> world
val sbp_world : ?config:Madeleine.Config.t -> unit -> world

val mad_pingpong : world -> bytes_count:int -> iters:int -> Marcel.Time.span
(** One-way time of a Madeleine ping-pong between ranks 0 and 1. *)

val raw_bip_pingpong : bytes_count:int -> iters:int -> Marcel.Time.span
(** The Fig. 5 baseline: raw BIP without Madeleine. *)

(** {1 The §6.2 two-cluster testbed} *)

type cluster_world = {
  cw_engine : Marcel.Engine.t;
  cw_session : Madeleine.Session.t;
  cw_gateway : Simnet.Node.t;
  ch_sci : Madeleine.Channel.t;
  ch_myri : Madeleine.Channel.t;
}

val two_cluster_world : ?config:Madeleine.Config.t -> unit -> cluster_world
(** Node 0 on SCI, node 2 on Myrinet, node 1 the gateway with both NICs. *)

val forwarding_bandwidth :
  ?gateway_overhead:Marcel.Time.span ->
  ?extra_gateway_copy:bool ->
  ?ingress_cap_mb_s:float ->
  mtu:int ->
  src:int ->
  dst:int ->
  bytes_count:int ->
  unit ->
  float
(** One-way inter-cluster bandwidth (MB/s) through the gateway for one
    Generic-TM packet size — the Figs. 10/11 measurement. *)

val forwarding_run :
  ?gateway_overhead:Marcel.Time.span ->
  ?extra_gateway_copy:bool ->
  ?ingress_cap_mb_s:float ->
  mtu:int ->
  src:int ->
  dst:int ->
  bytes_count:int ->
  unit ->
  float * float
(** Like {!forwarding_bandwidth} but also returns the gateway's PCI
    utilization over the run — the bus-saturation evidence behind the
    paper's §6.2.2 analysis. *)

val message_sizes : int list
(** The standard sweep used by the figures. *)

val iters_for : int -> int

(** {1 MPI worlds (Fig. 6)} *)

type mpi_device_kind =
  | Chmad
  | Scidirect of Mpilite.Dev_scidirect.profile

type mpi_world = {
  mpi_engine : Marcel.Engine.t;
  mpi_world : Mpilite.Mpi.world;
}

val make_mpi_world : n:int -> mpi_device_kind -> mpi_world
(** [n] ranks over SCI with the chosen MPI device. *)

val mpi_pingpong :
  mpi_device_kind -> bytes_count:int -> iters:int -> Marcel.Time.span

(** {1 Nexus worlds (Fig. 7)} *)

type nexus_proto = Nexus_mad_sisci | Nexus_mad_tcp

type nexus_world = { nx_engine : Marcel.Engine.t; nx_world : Nexus.world }

val make_nexus_world : n:int -> nexus_proto -> nexus_world

val nexus_roundtrip :
  nexus_proto -> bytes_count:int -> iters:int -> Marcel.Time.span
(** One-way time of an RSR echo (client fires handler 0 at a server
    whose handler echoes the payload back). *)
