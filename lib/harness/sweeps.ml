(* The figure sweeps of bench/main.exe, restructured so that every
   measured point is a (label, thunk) job returning a structured row.
   Thunks build their whole world inside the job (the world-isolation
   invariant, docs/MODEL.md), so a Parsim runner may execute them on any
   worker domain; rendering happens only after ordered collection, which
   is what makes parallel output byte-identical to serial output. *)

module Time = Marcel.Time
module H = Harness

type runner = { run : 'a. (string * (unit -> 'a)) list -> 'a list }

let serial_runner = { run = (fun jobs -> List.map (fun (_, f) -> f ()) jobs) }
let pool_runner pool = { run = (fun jobs -> Parsim.run pool jobs) }

let sizes_small =
  [ 4; 16; 64; 256; 1024; 4096; 16384; 65536; 262144; 1048576 ]

let iters n = if n <= 1024 then 20 else if n <= 65536 then 8 else 3

let line = String.make 72 '-'
let section title body = Printf.sprintf "\n%s\n%s\n%s\n%s" line title line body

let lat_us span = Time.to_us span
let bw n span = Time.rate_mb_s ~bytes_count:n span

(* ------------------------------------------------------------------ *)

let fig4 r =
  let rows =
    r.run
      (List.map
         (fun n ->
           ( Printf.sprintf "fig4/%d" n,
             fun () ->
               let t =
                 H.mad_pingpong (H.sisci_world ()) ~bytes_count:n
                   ~iters:(iters n)
               in
               Printf.sprintf "%-10d %12.2f %12.2f\n" n (lat_us t) (bw n t) ))
         sizes_small)
  in
  section
    "Fig. 4 -- Madeleine II over SISCI/SCI (paper: 3.9 us min latency,\n\
     82 MB/s peak, dual-buffering kink above 8 kB)"
    (Printf.sprintf "%-10s %12s %12s\n" "size(B)" "latency(us)" "bw(MB/s)"
    ^ String.concat "" rows)

let fig5 r =
  let rows =
    r.run
      (List.map
         (fun n ->
           ( Printf.sprintf "fig5/%d" n,
             fun () ->
               let m =
                 H.mad_pingpong (H.bip_world ()) ~bytes_count:n ~iters:(iters n)
               in
               let w = H.raw_bip_pingpong ~bytes_count:n ~iters:(iters n) in
               Printf.sprintf "%-10d %12.2f %12.2f %12.2f %12.2f\n" n
                 (lat_us m) (bw n m) (lat_us w) (bw n w) ))
         sizes_small)
  in
  section
    "Fig. 5 -- Madeleine II over BIP/Myrinet vs raw BIP (paper: 7 vs 5 us,\n\
     122 vs 126 MB/s)"
    (Printf.sprintf "%-10s %12s %12s %12s %12s\n" "size(B)" "mad lat(us)"
       "mad bw" "raw lat(us)" "raw bw"
    ^ String.concat "" rows)

let fig6 r =
  let rows =
    r.run
      (List.map
         (fun n ->
           ( Printf.sprintf "fig6/%d" n,
             fun () ->
               let raw =
                 H.mad_pingpong (H.sisci_world ()) ~bytes_count:n
                   ~iters:(iters n)
               in
               let chmad = H.mpi_pingpong H.Chmad ~bytes_count:n ~iters:(iters n) in
               let scim =
                 H.mpi_pingpong
                   (H.Scidirect Mpilite.Dev_scidirect.sci_mpich)
                   ~bytes_count:n ~iters:(iters n)
               in
               let scam =
                 H.mpi_pingpong
                   (H.Scidirect Mpilite.Dev_scidirect.scampi)
                   ~bytes_count:n ~iters:(iters n)
               in
               (n, raw, chmad, scim, scam) ))
         sizes_small)
  in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "%-10s | %10s %10s %10s %10s  (latency us)\n" "size(B)"
       "mad-raw" "chmad" "sci-mpich" "scampi");
  List.iter
    (fun (n, raw, chmad, scim, scam) ->
      Buffer.add_string b
        (Printf.sprintf "%-10d | %10.2f %10.2f %10.2f %10.2f\n" n (lat_us raw)
           (lat_us chmad) (lat_us scim) (lat_us scam)))
    rows;
  Buffer.add_string b
    (Printf.sprintf "\n%-10s | %10s %10s %10s %10s  (bandwidth MB/s)\n"
       "size(B)" "mad-raw" "chmad" "sci-mpich" "scampi");
  List.iter
    (fun (n, raw, chmad, scim, scam) ->
      Buffer.add_string b
        (Printf.sprintf "%-10d | %10.2f %10.2f %10.2f %10.2f\n" n (bw n raw)
           (bw n chmad) (bw n scim) (bw n scam)))
    rows;
  section
    "Fig. 6 -- MPI implementations over SCI (paper: MPICH/Mad-II has the\n\
     worst latency but the best bandwidth from 32 kB up)"
    (Buffer.contents b)

let fig7 r =
  let rows =
    r.run
      (List.map
         (fun n ->
           ( Printf.sprintf "fig7/%d" n,
             fun () ->
               let s =
                 H.nexus_roundtrip H.Nexus_mad_sisci ~bytes_count:n
                   ~iters:(iters n)
               in
               let t =
                 H.nexus_roundtrip H.Nexus_mad_tcp ~bytes_count:n
                   ~iters:(iters n)
               in
               Printf.sprintf "%-10d %13.2f %13.2f %13.2f %13.2f\n" n
                 (lat_us s) (bw n s) (lat_us t) (bw n t) ))
         [ 4; 64; 1024; 4096; 16384; 65536; 262144 ])
  in
  section
    "Fig. 7 -- Nexus/Madeleine II over SISCI and TCP (paper: <25 us min\n\
     latency on SCI; SCI the more interesting cluster solution)"
    (Printf.sprintf "%-10s %13s %13s %13s %13s\n" "size(B)" "sci lat(us)"
       "sci bw" "tcp lat(us)" "tcp bw"
    ^ String.concat "" rows)

let eq16k r =
  let n = 16384 in
  let rows =
    r.run
      [
        ( "eq16k/sisci",
          fun () ->
            let s = H.mad_pingpong (H.sisci_world ()) ~bytes_count:n ~iters:10 in
            Printf.sprintf "  Madeleine/SISCI @16kB: %7.1f us  %6.1f MB/s\n"
              (lat_us s) (bw n s) );
        ( "eq16k/bip",
          fun () ->
            let b = H.mad_pingpong (H.bip_world ()) ~bytes_count:n ~iters:10 in
            Printf.sprintf "  Madeleine/BIP   @16kB: %7.1f us  %6.1f MB/s\n"
              (lat_us b) (bw n b) );
      ]
  in
  section
    "Sec. 6.2.1 -- the 16 kB equal-cost point (paper: both networks near\n\
     250 us / 60 MB/s at 16 kB, suggesting the gateway packet size)"
    (String.concat "" rows)

let mtu_sweep = [ 8192; 16384; 32768; 65536; 131072 ]

let forwarding_fig ~title ~src ~dst r =
  let rows =
    r.run
      (List.map
         (fun mtu ->
           ( Printf.sprintf "fwd/%d-%d/%d" src dst mtu,
             fun () ->
               let v, util =
                 H.forwarding_run ~mtu ~src ~dst ~bytes_count:(1 lsl 20) ()
               in
               Printf.sprintf "%-10d %12.2f %13.0f%%\n" mtu v (100.0 *. util) ))
         mtu_sweep)
  in
  section title
    (Printf.sprintf "%-10s %12s %14s\n" "mtu(B)" "bw(MB/s)" "gw-pci-util"
    ^ String.concat "" rows)

let fig10 r =
  forwarding_fig
    ~title:
      "Fig. 10 -- forwarding bandwidth SCI -> Myrinet (paper: 36.5 MB/s at\n\
       8 kB packets, rising to ~49.5 at 128 kB; PCI full-duplex limit)"
    ~src:0 ~dst:2 r

let fig11 r =
  forwarding_fig
    ~title:
      "Fig. 11 -- forwarding bandwidth Myrinet -> SCI (paper: 29 MB/s at\n\
       8 kB, staying under ~36.5: Myrinet DMA starves the gateway's PIO)"
    ~src:2 ~dst:0 r
