(** The paper's figure sweeps (§5–§6) as parallel-ready job sets.

    Every measured point of a figure is one {e job}: a [(label, thunk)]
    pair whose thunk builds a fresh, fully isolated world, measures one
    point and returns a structured row — no printing. A {!runner}
    decides how the job set executes (serially, or fanned out over a
    {!Parsim} pool); each figure function renders the collected rows to
    the section's full text {e after} collection, so the output is
    byte-identical whatever the runner. *)

type runner = { run : 'a. (string * (unit -> 'a)) list -> 'a list }
(** How to execute a job set. [run] must return results in submission
    order (both runners below do). *)

val serial_runner : runner
(** Runs each job in place, in order — the reference semantics. *)

val pool_runner : Parsim.pool -> runner
(** Fans the job set out over the pool's domains; {!Parsim.run}'s
    deterministic collector restores submission order. *)

(** {1 Figure sections}

    Each returns the complete rendered section (header included),
    byte-identical for any conforming runner. *)

val fig4 : runner -> string
(** Madeleine II over SISCI/SCI: latency and bandwidth sweep. *)

val fig5 : runner -> string
(** Madeleine II over BIP/Myrinet vs raw BIP. *)

val fig6 : runner -> string
(** The three MPI implementations over SCI, latency then bandwidth. *)

val fig7 : runner -> string
(** Nexus/Madeleine II over SISCI and TCP. *)

val eq16k : runner -> string
(** §6.2.1: the 16 kB equal-cost point of the two networks. *)

val fig10 : runner -> string
(** Forwarding bandwidth SCI -> Myrinet across gateway MTUs. *)

val fig11 : runner -> string
(** Forwarding bandwidth Myrinet -> SCI across gateway MTUs. *)
