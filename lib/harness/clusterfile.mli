(** Declarative cluster descriptions.

    Real Madeleine II sessions were launched from configuration files
    naming the machines, networks and channels (the later PM2 stack
    called the launcher Leonie). This module provides the equivalent for
    the simulated testbed: a small line-based description builds the
    whole world — fabrics, nodes, protocol instances, channels and
    virtual channels — ready to run.

    {v
    # the paper's 6.2 testbed
    network sci   type=sisci
    network myri  type=bip

    node a   nets=sci
    node gw  nets=sci,myri
    node b   nets=myri

    channel  c-sci   net=sci   nodes=a,gw
    channel  c-myri  net=myri  nodes=gw,b
    vchannel wan     channels=c-sci,c-myri  mtu=16384
    v}

    Syntax: one declaration per line — [network NAME type=T],
    [node NAME nets=N1,N2...], [channel NAME net=N nodes=A,B,...] and
    [vchannel NAME channels=C1,C2,... \[mtu=BYTES\]
    \[gateway_overhead_us=US\] \[ingress_cap=MB_S\] \[reliable=BOOL\]
    \[patience_us=US\] \[credits=N\] \[gw_pool=N\]]. Channel options:
    [aggregation=BOOL], [checked=BOOL], [slots=INT], [dma=BOOL],
    [rx=poll|interrupt|adaptive], [connect_timeout_us=US],
    [slot_payload=BYTES] (sisci regular-ring slot payload,
    {!Madeleine.Config.t.sisci_slot_payload}), [dma_threshold=BYTES]
    (PIO-to-DMA switch point), [rendezvous=BYTES|auto|off] (zero-copy
    rendezvous threshold; [auto] reads the fabric's measured crossover
    from {!Crossover.default_file}, written by [madbench crossover],
    and is rejected with a line-numbered {!Parse_error} when no
    measurement exists), [regcache=N] (>= 0 cached registrations; 0 =
    register per send) and [regcache_bytes=BYTES] (pinned-byte budget
    of the cache). A vchannel additionally accepts [version=N] (>= 1;
    arms the live-topology plane with the clusterfile's membership as
    epoch [N], see {!Madeleine.Vchannel.topology}) and
    [coordinator=NODE] (a declared node that arbitrates joins and
    drains; requires [version=], defaults to the lowest rank). Both are
    rejected with a line-numbered {!Parse_error} on malformed values or
    unknown nodes. [election=on|off] (default [off]) replaces the
    static coordinator with a quorum-elected one
    ({!Madeleine.Vchannel.election_stats}); it requires [version=] and
    [reliable=true], and [coordinator=] then merely seats the initial
    incumbent. [topo_quorum=N] (>= 1) pins the election's ballot
    quorum (default: a majority of the current membership) and
    requires [election=on].
    Malformed values, [election=on] without its prerequisites and
    [topo_quorum=] without [election=on] are all rejected with a
    line-numbered {!Parse_error}. [coll=tree|flat] attaches a fault-tolerant
    collectives layer ({!Madeleine.Collectives}, retrieved with
    {!collectives}); [coll_fanout=N] (>= 2, requires [coll=tree]) caps
    the children per spanning-tree node and [coll_quorum=N] (>= 1,
    requires [coll=]) is the live-rank minimum below which a collective
    fails typed. Malformed values, [coll_fanout=] without [coll=tree]
    and [coll_quorum=] without [coll=] are all rejected with a
    line-numbered {!Parse_error}; with [coll=] unset no layer is
    created and the vchannel behaves exactly as before. Network
    types: [sisci], [bip], [tcp], [via], [sbp]; [tcp] networks
    additionally accept [window=FRAMES] (go-back-N sender window) and
    [max_retries=N] (consecutive RTO expiries before a connection is
    declared dead) — see {!Tcpnet.make_net} — and [bip] networks
    [credits=N] (short-message send window, {!Bip.make_net}). Options
    on a network kind that does not support them are rejected with a
    line-numbered {!Parse_error}. On a vchannel, [credits=N] arms
    end-to-end credit-based flow control and [gw_pool=N] sizes the
    gateway forwarding pools (both >= 1; see
    {!Madeleine.Vchannel.create}). [#] starts a comment. Declarations
    must appear in dependency order (networks, then nodes, then
    channels, then virtual channels). Node ranks are assigned in
    declaration order.

    {2 Fault injection}

    [faults seed=N] creates a deterministic {!Simnet.Faults} plane and
    attaches it to every fabric of the description (declared before or
    after the line); it must precede any [fault] line, any
    [reliable=true] vchannel and any channel with a connect timeout that
    should actually fire. Individual faults then read:
    {v
    fault drop    net=NET node=NAME rate=R        # per-fragment loss
    fault corrupt net=NET node=NAME rate=R        # per-fragment bit flip
    fault flap    net=NET node=NAME at_us=T for_us=D
    fault crash   node=NAME at_us=T [restart_after_us=D]
    fault stall   node=NAME at_us=T for_us=D      # PCI-bus hog
    v}
    [reliable=true] on a vchannel enables sequence-numbered delivery
    with origin logging and gateway failover against the declared
    plane (see {!Madeleine.Vchannel.create}). *)

type t

exception Parse_error of int * string
(** Line number (1-based) and explanation. *)

val load : string -> t
(** Builds the world from a description. All protocol resources are
    created immediately, as at session initialization. *)

val load_file : string -> t

val engine : t -> Marcel.Engine.t
val session : t -> Madeleine.Session.t

val faults : t -> Simnet.Faults.t option
(** The fault plane of a [faults seed=N] declaration, if any. *)

val networks : t -> string list
val nodes : t -> string list
val channels : t -> string list
val vchannels : t -> string list

val node : t -> string -> Simnet.Node.t
(** Raises [Not_found] for unknown names, as do the lookups below. *)

val rank_of : t -> string -> int
val channel : t -> string -> Madeleine.Channel.t
val vchannel : t -> string -> Madeleine.Vchannel.t

val collectives : t -> string -> Madeleine.Collectives.t option
(** The collectives layer of a [coll=] vchannel declaration, by
    vchannel name; [None] when the vchannel was declared without
    [coll=] (unknown names also yield [None]). *)
