(** The deterministic chaos harness.

    Drives fig-4-style ping-pong workloads and the gateway-forwarding
    workload through the {!Simnet.Faults} plane, verifying that what the
    reliable transports deliver is bit-identical to what was packed, and
    recording how latency and bandwidth degrade under each injected
    failure (drop rates, corruption, link flaps, PCI stalls, gateway
    crashes).

    Every recorded number is simulated time or a simulated counter —
    nothing host-dependent — so a {!report} is a pure function of
    [(seed, quick)]: reruns and different worker counts produce
    byte-identical JSON. *)

type row = {
  scenario : string; (* "drop", "corrupt", "flap" or "pci-stall" *)
  size : int;
  drop_pct : float; (* injected per-link rate, in percent *)
  lat_us : float;
  bw_mb_s : float;
  drops : int;
  corrupts : int;
  retransmissions : int;
  crc_rejects : int;
  intact : bool; (* delivered bytes matched packed bytes throughout *)
}

type failover = {
  fo_messages : int;
  fo_size : int;
  fo_crashed_gateway : int;
  fo_route_after : int list; (* hops of the recomputed 0 -> 3 route *)
  fo_reroutes : int;
  fo_reemitted : int;
  fo_dup_drops : int;
  fo_intact : bool;
  fo_partitioned : bool; (* crashing the last gateway raised Partitioned *)
  fo_finish_us : float;
}

type report = {
  rep_seed : int;
  rep_quick : bool;
  rep_rows : row list;
  rep_failover : failover;
}

val failover_run : seed:int -> size:int -> messages:int -> failover
(** The redundant-gateway crash scenario on its own (also part of
    {!run}): rank 0 streams [messages] messages of [size] bytes to
    rank 3 across two Ethernet segments joined by gateways 1 and 2; the
    first-hop gateway is crashed right after the first message is
    delivered, so the crash lands mid-stream. *)

val run : Sweeps.runner -> seed:int -> quick:bool -> report
(** The full workload set: a drop-rate x size sweep, a corruption sweep,
    a mid-exchange link flap, a PCI stall, and the redundant-gateway
    crash scenario (rank 0 to rank 3 across two Ethernet segments; the
    first-hop gateway dies after the first message, the rest must arrive
    intact over the recomputed route; killing the second gateway must
    raise {!Madeleine.Vchannel.Partitioned}). [quick] trims the sweep to
    a CI-sized subset. *)

val all_ok : report -> bool
(** No corrupted delivery anywhere, failover delivered every message,
    routes were actually recomputed, and the final partition was
    detected. *)

val to_json : report -> string
val render_table : report -> string

val clean_path_events : unit -> int
(** Host events processed by the quick chaos ping-pong workload with no
    fault plane attached — the simspeed control guarding the fault-free
    fast path. *)
