(** The deterministic chaos harness.

    Drives fig-4-style ping-pong workloads and the gateway-forwarding
    workload through the {!Simnet.Faults} plane, verifying that what the
    reliable transports deliver is bit-identical to what was packed, and
    recording how latency and bandwidth degrade under each injected
    failure (drop rates, corruption, link flaps, PCI stalls, gateway
    crashes).

    Every recorded number is simulated time or a simulated counter —
    nothing host-dependent — so a {!report} is a pure function of
    [(seed, quick)]: reruns and different worker counts produce
    byte-identical JSON. *)

type row = {
  scenario : string; (* "drop", "corrupt", "flap", "reorder" or "pci-stall" *)
  size : int;
  drop_pct : float; (* injected per-link rate, in percent *)
  lat_us : float;
  bw_mb_s : float;
  drops : int;
  corrupts : int;
  dups : int; (* frames the plane delivered twice *)
  delays : int; (* frames held back so later ones overtake *)
  retransmissions : int;
  crc_rejects : int;
  intact : bool; (* delivered bytes matched packed bytes throughout *)
}

type failover = {
  fo_messages : int;
  fo_size : int;
  fo_crashed_gateway : int;
  fo_route_after : int list; (* hops of the recomputed 0 -> 3 route *)
  fo_reroutes : int;
  fo_reemitted : int;
  fo_dup_drops : int;
  fo_intact : bool;
  fo_partitioned : bool; (* crashing the last gateway raised Partitioned *)
  fo_finish_us : float;
}

type goodput = {
  gp_size : int;
  gp_messages : int;
  gp_drop_pct : float;
  gp_window : int;
  gp_window_mb_s : float; (* go-back-N with the configured window *)
  gp_stopwait_mb_s : float; (* same stream, window = 1 *)
  gp_speedup : float;
  gp_intact : bool;
}

type crash_restart = {
  cr_messages : int; (* per phase; the stream has two phases *)
  cr_size : int;
  cr_gateway : int;
  cr_restart_us : float;
  cr_delivered : int;
  cr_handshakes : int; (* crash-epoch session handshakes completed *)
  cr_reroutes : int;
  cr_reemitted : int;
  cr_dup_drops : int;
  cr_exactly_once : bool; (* every message once, bit-identical *)
  cr_suspicions : (float * int * int * string * string * float) list;
      (* sentinel timeline: (at_us, observer, peer, from, to, phi) *)
  cr_flows : Madeleine.Vchannel.flow_stat list;
  cr_finish_us : float;
}

type overload = {
  ov_messages : int;
  ov_size : int;
  ov_credits : int;
  ov_mtu : int;
  ov_rx_cap_mb_s : float; (* receiving host's capped drain rate *)
  ov_clean_mb_s : float; (* the same stream with no throttle *)
  ov_throttled_mb_s : float;
  ov_stalls : int; (* times the sender blocked out of credits *)
  ov_grants : int;
  ov_probes : int; (* zero-window probes while blocked *)
  ov_queues : Madeleine.Vchannel.queue_stat list;
  ov_inbox_peak_bytes : int; (* worst tcp receive backlog across conns *)
  ov_sendq_peak_frames : int;
  ov_intact : bool;
  ov_bounded : bool; (* every instrumented peak <= its bound *)
  ov_finish_us : float;
}

type slow_gateway = {
  sg_messages : int;
  sg_size : int;
  sg_credits : int;
  sg_gw_pool : int;
  sg_rx_cap_mb_s : float; (* egress receiver's capped drain rate *)
  sg_ingress_mb_s : float; (* sustained end-to-end rate through the gw *)
  sg_overload_events : int; (* rising-edge Overloaded transitions *)
  sg_overload_reported : bool; (* seen via peer_status or a sentinel *)
  sg_overload_cleared : bool; (* nothing still overloaded at the end *)
  sg_queues : Madeleine.Vchannel.queue_stat list;
  sg_intact : bool;
  sg_bounded : bool;
  sg_finish_us : float;
}

type sched_chaos = {
  sc_flows : int;
  sc_messages : int; (* per flow *)
  sc_size : int;
  sc_drop_pct : float;
  sc_merged : int; (* frames that shared their wire packet *)
  sc_aggregates : int; (* aggregate wire packets emitted *)
  sc_mean_frames : float;
  sc_flush_full : int; (* flushes forced by the aggr_max budget *)
  sc_flush_deadline : int; (* flushes forced by the aggr_flush deadline *)
  sc_flush_flow : int; (* flushes forced by per-flow ordering *)
  sc_reemitted : int;
  sc_dup_drops : int;
  sc_intact : bool; (* every flow bit-identical, in per-flow order *)
  sc_finish_us : float;
}

type rolling_restart = {
  rr_messages : int; (* per phase; the stream has two phases *)
  rr_size : int;
  rr_restarted : int list; (* every rank, in roll order *)
  rr_epoch_start : int;
  rr_epoch_final : int;
  rr_joins : int; (* epoch swaps that re-admitted a rank *)
  rr_drains : int; (* epoch swaps that removed a rank *)
  rr_delivered : int;
  rr_dup_deliveries : int; (* messages the application saw twice *)
  rr_reroutes : int;
  rr_reemitted : int;
  rr_dup_drops : int; (* wire duplicates the reliability plane dropped *)
  rr_handshakes : int;
  rr_queues : Madeleine.Vchannel.queue_stat list;
  rr_partitioned : bool; (* a data flow observed Partitioned *)
  rr_exactly_once : bool; (* every message once, bit-identical *)
  rr_bounded : bool; (* every instrumented peak <= its bound *)
  rr_finish_us : float;
}

type elastic = {
  el_op : string; (* "join" or "drain" *)
  el_messages : int;
  el_size : int;
  el_rank : int; (* the rank that joined / drained *)
  el_epoch_final : int;
  el_routable : bool; (* join: rank reachable; drain: rank off every route *)
  el_status : string; (* peer_status toward the rank after the swap *)
  el_watched : bool; (* some sentinel still probes the rank *)
  el_partitioned : bool; (* an in-flight flow observed Partitioned *)
  el_intact : bool;
  el_finish_us : float;
}

type partition_chaos = {
  pt_workload : string;
      (* "partition-majority", "coordinator-loss" or "partition-flapping" *)
  pt_messages : int;
  pt_size : int;
  pt_cycles : int; (* partition/heal cycles injected *)
  pt_coordinator_before : int;
  pt_coordinator_after : int; (* -1 = no committed coordinator *)
  pt_elections : int; (* committed coordinator changes *)
  pt_epochs_unique : bool; (* at most one commit per epoch, the
                              split-brain audit *)
  pt_reelect_latency_us : float; (* candidacy-start -> commit, last
                                    election *)
  pt_cut_delivered : int; (* majority-side messages landed mid-cut *)
  pt_minority_typed : bool; (* minority ops failed typed, never hung *)
  pt_pending_after : int; (* intents still parked at the end *)
  pt_members_final : int list;
  pt_reemitted : int;
  pt_exactly_once : bool; (* every stream exactly-once, bit-identical *)
  pt_finish_us : float;
}
(** Outcome of one partition chaos workload on the quorum-election
    world: four ranks on one Ethernet segment, the coordinator seat
    elected with a majority of the current membership (see
    {!Madeleine.Vchannel.election_stats}), cuts injected with
    {!Simnet.Faults.partition}. *)

type coll_chaos = {
  co_workload : string;
  co_ranks : int;
  co_expected : int; (* collective calls issued across all ranks *)
  co_completed : int; (* calls that returned a decision *)
  co_failed : int; (* calls that raised [Collective_failed] *)
  co_agree : bool; (* every completing rank got bit-identical bytes *)
  co_value_ok : bool; (* decided value = sum over the covered ranks *)
  co_covered : int list; (* ranks the last decision covers, sorted *)
  co_rejoined : bool; (* >= 1 late contribution answered from the journal *)
  co_spine_ok : bool; (* no Overloaded gateway sat on the sampled spine *)
  co_repairs : int;
  co_packets : int;
  co_combined : int;
  co_root_contribs : int;
  co_dup_suppressed : int;
  co_finish_us : float;
}
(** Outcome of one collectives chaos workload; which invariants are
    meaningful depends on [co_workload] (see {!coll_gates}). *)

type coll_scale_row = {
  sr_ranks : int;
  sr_depth : int; (* depth of the deciding tree *)
  sr_rounds : int; (* up+down rounds of the barrier *)
  sr_tree_us : float;
  sr_tree_root_contribs : int;
  sr_tree_packets : int;
  sr_flat_us : float;
  sr_flat_root_contribs : int;
  sr_flat_packets : int;
}

type coll_scale = {
  cs_fanout : int;
  cs_rows : coll_scale_row list;
  cs_ratio : float; (* flat / tree barrier latency at the largest size *)
  cs_log_like : bool; (* tree depth <= 2 * ceil(log2 n) at every size *)
}
(** The log-vs-linear scaling measurement: one barrier per (size, algo)
    over the hierarchical cluster-of-clusters world. *)

type report = {
  rep_seed : int;
  rep_quick : bool;
  rep_rows : row list;
  rep_failover : failover;
  rep_goodput : goodput;
  rep_crash : crash_restart;
  rep_overload : overload;
  rep_slow_gateway : slow_gateway;
  rep_sched : sched_chaos;
  rep_rolling : rolling_restart;
  rep_join : elastic;
  rep_drain : elastic;
}

val failover_run : seed:int -> size:int -> messages:int -> failover
(** The redundant-gateway crash scenario on its own (also part of
    {!run}): rank 0 streams [messages] messages of [size] bytes to
    rank 3 across two Ethernet segments joined by gateways 1 and 2; the
    first-hop gateway is crashed right after the first message is
    delivered, so the crash lands mid-stream. *)

val crash_restart_run : seed:int -> size:int -> messages:int -> crash_restart
(** The crash-restart scenario on its own (also part of {!run}): rank 0
    streams through the only gateway to rank 2; the gateway dies
    mid-stream and restarts within the vchannel's patience, then — once
    phase one is fully delivered — the origin itself dies and restarts
    with a new crash epoch, resuming the stream after the session
    handshake. Delivery must be exactly-once and bit-identical
    throughout. *)

val goodput_run :
  seed:int -> size:int -> messages:int -> window:int -> drop:float -> goodput
(** One-way verified TCP stream under [drop] per-link loss, measured
    once with the go-back-N [window] and once degraded to stop-and-wait
    (window 1). *)

val overload_run :
  seed:int ->
  size:int ->
  messages:int ->
  credits:int ->
  mtu:int ->
  rx_cap_mb_s:float ->
  overload
(** The overload scenario on its own (also part of {!run}): a
    credit-armed reliable vchannel over one TCP segment whose receiving
    host is capped at [rx_cap_mb_s] by
    {!Simnet.Faults.slow_receiver} — a ~100:1 rate mismatch against the
    unthrottled stream, which is measured first as the baseline. The
    sender must end up blocked on the credit window: delivery is
    bit-identical and every instrumented queue peak stays under its
    bound. *)

val slow_gateway_run :
  seed:int ->
  size:int ->
  messages:int ->
  credits:int ->
  gw_pool:int ->
  rx_cap_mb_s:float ->
  slow_gateway
(** The slow-gateway scenario on its own (also part of {!run}): a
    two-segment route whose egress receiver is rate-capped while
    credits are generous, so the gateway's bounded forwarding pool is
    the active constraint. Ingress must be throttled to the egress
    bandwidth hop-by-hop, with the gateway reporting [Overloaded]
    through {!Madeleine.Vchannel.peer_status} and the sentinels while
    its pool is pinned, and clearing once the stream drains. *)

val sched_aggreg_run :
  seed:int ->
  flows:int ->
  messages:int ->
  size:int ->
  drop:float ->
  sched_chaos
(** The aggregation-under-loss scenario on its own (also part of
    {!run}): [flows] concurrent logical flows each stream [messages]
    messages of [size] bytes from rank 0 to rank 2 through the gateway
    on a reliable [sched=aggreg] vchannel, with [drop] per-link loss on
    both segments. The scheduler merges the small-message trains into
    aggregates, which cross the lossy links as single go-back-N units;
    delivery must end bit-identical and in order on every flow, and the
    scheduler must have merged at least one pair of frames. *)

val rolling_restart_run : seed:int -> size:int -> messages:int -> rolling_restart
(** The headline live-topology scenario on its own (also part of
    {!run}): the redundant-gateway world with its membership promoted
    to a versioned epoch snapshot (coordinator rank 0). While rank 0
    streams [2 * messages] messages to rank 3, every rank restarts —
    the spare gateway, the on-route gateway and the receiver each
    drain, crash-restart and rejoin under advancing epochs (the data
    flow reroutes mid-stream when the on-route gateway leaves), and
    the coordinator itself rides a crash-epoch restart between
    phases. Delivery must be exactly-once and bit-identical, no data
    flow may observe {!Madeleine.Vchannel.Partitioned}, and every
    instrumented queue stays under its bound. *)

val join_load_run : seed:int -> size:int -> messages:int -> elastic
(** Join-under-load on its own (also part of {!run}): rank 3 drains
    before any traffic, a background stream runs 0 -> 1, and rank 3
    rejoins mid-stream — becoming routable without quiescing the
    background flow — after which a fresh 0 -> 3 stream completes. No
    flow may observe [Partitioned]; afterwards the joiner is routable,
    reports [Up] and is watched by a sentinel again. *)

val drain_load_run : seed:int -> size:int -> messages:int -> elastic
(** Drain-under-load on its own (also part of {!run}): the on-route
    gateway of a live 0 -> 3 stream drains mid-sweep. The stream must
    reroute through the spare gateway with exactly-once delivery and
    no [Partitioned]; afterwards the drained rank is off every route,
    reports the typed [Departed] status and has been forgotten by
    every sentinel. *)

val partition_majority_run : seed:int -> size:int -> messages:int -> partition_chaos
(** The majority keeps working while a cut isolates an outsider host:
    rank 3 drains cleanly, the cut isolates its host, a mid-stream
    0 -> 1 flow keeps delivering, the cut-side re-join parks with the
    typed {!Madeleine.Vchannel.No_quorum}, and the heal replays it —
    after which a fresh 0 -> 3 stream must land exactly-once over the
    revived paths. The coordinator seat must never move. *)

val coordinator_loss_run : seed:int -> size:int -> messages:int -> partition_chaos
(** The coordinator itself is cut off mid-stream: the majority elects
    its lowest member (the re-election latency is recorded) and keeps
    its goodput, the isolated old seat sees typed [Partitioned] flows
    and no quorum, and after the heal a fresh stream from it must land
    exactly-once. *)

val partition_flapping_run :
  seed:int -> size:int -> messages:int -> cycles:int -> partition_chaos
(** [cycles] cut/heal cycles, each isolating whoever currently holds
    the seat: every flap must commit exactly one new epoch (the commit
    audit trail stays duplicate-free), the membership must survive
    unchanged, and a stream between two never-cut ranks delivers
    exactly-once through the churn. *)

val partition_gates : partition_chaos -> (string * bool) list
(** Pass/fail invariants of one partition workload, prefixed with its
    name: unique commit epochs, mid-cut majority goodput, typed
    minority errors, no parked intent surviving the heal, exactly-once
    delivery — plus, per workload, the seat-stability / re-election /
    flap-count gates. [madbench chaos partition-majority|
    coordinator-loss|partition-flapping] keys its exit code off
    these. *)

val partition_line : partition_chaos -> string
(** One-line human rendering (newline terminated). *)

val coll_crash_barrier_run : seed:int -> coll_chaos
(** Crash mid-barrier with a restart re-join: on the 4-rank redundant
    gateway world, rank 3 holds a barrier open while the others park
    waiting for its contribution, the controller crashes it under them
    (restart 5 ms later), the survivors repair and decide among
    themselves, and the restarted rank re-enters the same collective
    and is answered from the decision journal. A follow-up allreduce
    proves exactly-once: its value must equal the sum over exactly the
    covered ranks — a double-counted contribution cannot produce it. *)

val coll_spine_overload_run :
  seed:int ->
  size:int ->
  messages:int ->
  credits:int ->
  gw_pool:int ->
  rx_cap_mb_s:float ->
  coll_chaos
(** An [Overloaded] gateway on the tree spine: a background stream
    through the redundant-gateway world pins the on-route gateway's
    forwarding pool until the overload watermark trips, then a barrier
    runs. The sampled spine must hang the far rank off the spare
    gateway — the tree routes around the load — and the barrier must
    complete. *)

val coll_rolling_allreduce_run :
  seed:int -> clusters:int -> per:int -> coll_chaos
(** Rolling restarts during one allreduce over a hierarchical world of
    [clusters] leaf channels of [per] ranks bridged by a gateway
    backbone: a leaf rank and then a whole gateway (cutting its cluster
    off the tree) crash and restart while rank 1 holds the collective
    open. Every rank's call must return bit-identical bytes equal to
    the sum over exactly the covered set, with at least one journal
    re-join and repair generation observed. *)

val coll_scale_run :
  seed:int -> fanout:int -> sizes:(int * int) list -> coll_scale
(** The headline scaling figure: for each [(clusters, per)] size, one
    faultless barrier under [Tree] and one under [Flat], measuring
    simulated completion latency and root contribution counts.
    Deterministic for a given seed. *)

val run : Sweeps.runner -> seed:int -> quick:bool -> report
(** The full workload set: a drop-rate x size sweep, a corruption sweep,
    a mid-exchange link flap, a reorder/duplication exchange, a PCI
    stall, the redundant-gateway crash scenario (rank 0 to rank 3 across
    two Ethernet segments; the first-hop gateway dies after the first
    message, the rest must arrive intact over the recomputed route;
    killing the second gateway must raise
    {!Madeleine.Vchannel.Partitioned}), the sliding-window goodput
    comparison, the crash-restart exactly-once scenario, the
    credit-backpressure overload scenario and the bounded-pool
    slow-gateway scenario. [quick] trims the sweep to a CI-sized
    subset. *)

val gates : report -> (string * bool) list
(** Every pass/fail invariant of the report, by name: intact delivery
    everywhere, failover rerouted and detected the partition, goodput
    speedup >= 2x, crash-restart exactly-once with a handshake, the
    overload run stalled the sender with every queue under its bound at
    a >= 10:1 measured rate mismatch, the slow-gateway run throttled
    ingress to the egress bandwidth with the overload reported and
    cleared, and the sched-aggreg run delivered every logical flow
    bit-identical under loss while actually merging frames. The JSON
    report embeds this list; [madbench chaos] exits non-zero naming the
    gates that failed. *)

val rolling_gates : rolling_restart -> (string * bool) list
val elastic_gates : elastic -> (string * bool) list
(** The live-topology subsets of {!gates}, usable on a single scenario
    run — [madbench chaos rolling-restart|join|drain] keys its exit
    code off these. *)

val coll_gates : coll_chaos -> (string * bool) list
(** Pass/fail invariants of one collectives chaos workload, prefixed
    with its name: all calls completed with none failed typed, results
    agree bit-identically, the decided value matches the covered set
    exactly once — plus, per workload, the journal re-join and repair
    gates (crash / rolling) or the spine-avoids-overloaded gate. *)

val coll_scale_gates : coll_scale -> (string * bool) list
(** The scaling gates: tree depth stays logarithmic at every size, the
    flat/tree latency ratio at the largest size is >= 4x, and gateway
    combining delivers fewer root contributions than the flat star at
    every size. *)

val rolling_line : rolling_restart -> string
val elastic_line : elastic -> string
(** One-line human renderings of the live-topology scenarios (newline
    terminated), as embedded in {!render_table}. *)

val coll_line : coll_chaos -> string
val coll_scale_line : coll_scale -> string
(** Human renderings of the collectives workloads ([coll_scale_line]
    is a small table, one row per size). *)

val failing_gates : report -> string list
(** Names of the gates currently false, in {!gates} order. *)

val all_ok : report -> bool
(** [List.for_all snd (gates r)]. *)

val to_json : report -> string
val render_table : report -> string

val clean_path_events : unit -> int
(** Host events processed by the quick chaos ping-pong workload with no
    fault plane attached — the simspeed control guarding the fault-free
    fast path. *)

val inert_window_events : window:int -> int
(** Host events processed by a one-way reliable TCP stream (256 x 4 kB)
    with a fault plane attached but inert — the simspeed control
    guarding the fault-free fast path of the go-back-N protocol. Run it
    at the default window and at [window:1] (stop-and-wait) to compare
    the window machinery's overhead. *)
