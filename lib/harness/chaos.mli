(** The deterministic chaos harness.

    Drives fig-4-style ping-pong workloads and the gateway-forwarding
    workload through the {!Simnet.Faults} plane, verifying that what the
    reliable transports deliver is bit-identical to what was packed, and
    recording how latency and bandwidth degrade under each injected
    failure (drop rates, corruption, link flaps, PCI stalls, gateway
    crashes).

    Every recorded number is simulated time or a simulated counter —
    nothing host-dependent — so a {!report} is a pure function of
    [(seed, quick)]: reruns and different worker counts produce
    byte-identical JSON. *)

type row = {
  scenario : string; (* "drop", "corrupt", "flap", "reorder" or "pci-stall" *)
  size : int;
  drop_pct : float; (* injected per-link rate, in percent *)
  lat_us : float;
  bw_mb_s : float;
  drops : int;
  corrupts : int;
  dups : int; (* frames the plane delivered twice *)
  delays : int; (* frames held back so later ones overtake *)
  retransmissions : int;
  crc_rejects : int;
  intact : bool; (* delivered bytes matched packed bytes throughout *)
}

type failover = {
  fo_messages : int;
  fo_size : int;
  fo_crashed_gateway : int;
  fo_route_after : int list; (* hops of the recomputed 0 -> 3 route *)
  fo_reroutes : int;
  fo_reemitted : int;
  fo_dup_drops : int;
  fo_intact : bool;
  fo_partitioned : bool; (* crashing the last gateway raised Partitioned *)
  fo_finish_us : float;
}

type goodput = {
  gp_size : int;
  gp_messages : int;
  gp_drop_pct : float;
  gp_window : int;
  gp_window_mb_s : float; (* go-back-N with the configured window *)
  gp_stopwait_mb_s : float; (* same stream, window = 1 *)
  gp_speedup : float;
  gp_intact : bool;
}

type crash_restart = {
  cr_messages : int; (* per phase; the stream has two phases *)
  cr_size : int;
  cr_gateway : int;
  cr_restart_us : float;
  cr_delivered : int;
  cr_handshakes : int; (* crash-epoch session handshakes completed *)
  cr_reroutes : int;
  cr_reemitted : int;
  cr_dup_drops : int;
  cr_exactly_once : bool; (* every message once, bit-identical *)
  cr_suspicions : (float * int * int * string * string * float) list;
      (* sentinel timeline: (at_us, observer, peer, from, to, phi) *)
  cr_flows : Madeleine.Vchannel.flow_stat list;
  cr_finish_us : float;
}

type report = {
  rep_seed : int;
  rep_quick : bool;
  rep_rows : row list;
  rep_failover : failover;
  rep_goodput : goodput;
  rep_crash : crash_restart;
}

val failover_run : seed:int -> size:int -> messages:int -> failover
(** The redundant-gateway crash scenario on its own (also part of
    {!run}): rank 0 streams [messages] messages of [size] bytes to
    rank 3 across two Ethernet segments joined by gateways 1 and 2; the
    first-hop gateway is crashed right after the first message is
    delivered, so the crash lands mid-stream. *)

val crash_restart_run : seed:int -> size:int -> messages:int -> crash_restart
(** The crash-restart scenario on its own (also part of {!run}): rank 0
    streams through the only gateway to rank 2; the gateway dies
    mid-stream and restarts within the vchannel's patience, then — once
    phase one is fully delivered — the origin itself dies and restarts
    with a new crash epoch, resuming the stream after the session
    handshake. Delivery must be exactly-once and bit-identical
    throughout. *)

val goodput_run :
  seed:int -> size:int -> messages:int -> window:int -> drop:float -> goodput
(** One-way verified TCP stream under [drop] per-link loss, measured
    once with the go-back-N [window] and once degraded to stop-and-wait
    (window 1). *)

val run : Sweeps.runner -> seed:int -> quick:bool -> report
(** The full workload set: a drop-rate x size sweep, a corruption sweep,
    a mid-exchange link flap, a reorder/duplication exchange, a PCI
    stall, the redundant-gateway crash scenario (rank 0 to rank 3 across
    two Ethernet segments; the first-hop gateway dies after the first
    message, the rest must arrive intact over the recomputed route;
    killing the second gateway must raise
    {!Madeleine.Vchannel.Partitioned}), the sliding-window goodput
    comparison, and the crash-restart exactly-once scenario. [quick]
    trims the sweep to a CI-sized subset. *)

val all_ok : report -> bool
(** No corrupted delivery anywhere, failover delivered every message,
    routes were actually recomputed, the final partition was detected,
    the go-back-N window beat stop-and-wait by at least 2x at 1% drop,
    and the crash-restart stream was delivered exactly once with at
    least one session handshake. *)

val to_json : report -> string
val render_table : report -> string

val clean_path_events : unit -> int
(** Host events processed by the quick chaos ping-pong workload with no
    fault plane attached — the simspeed control guarding the fault-free
    fast path. *)

val inert_window_events : window:int -> int
(** Host events processed by a one-way reliable TCP stream (256 x 4 kB)
    with a fault plane attached but inert — the simspeed control
    guarding the fault-free fast path of the go-back-N protocol. Run it
    at the default window and at [window:1] (stop-and-wait) to compare
    the window machinery's overhead. *)
