(* The deterministic chaos harness: fig-4-style workloads driven through
   the fault plane, checking that reliable delivery actually delivers —
   every received byte is compared against what was packed — while
   recording how much latency and bandwidth degrade under each injected
   failure. All numbers in a report are simulated quantities, so a report
   for a given seed and workload set is byte-identical across runs and
   across worker counts (the jobs fan out over a {!Sweeps.runner}). *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams
module Faults = Simnet.Faults
module Channel = Madeleine.Channel
module Mad = Madeleine.Api
module Vc = Madeleine.Vchannel

type row = {
  scenario : string;
  size : int;
  drop_pct : float; (* per-link injected rate, percent *)
  lat_us : float; (* one-way, averaged over the iterations *)
  bw_mb_s : float;
  drops : int; (* frames the plane decided to drop *)
  corrupts : int; (* frames the plane corrupted in flight *)
  dups : int; (* frames the plane delivered twice *)
  delays : int; (* frames held back so later ones overtake *)
  retransmissions : int;
  crc_rejects : int;
  intact : bool; (* every delivered message matched the packed bytes *)
}

type failover = {
  fo_messages : int;
  fo_size : int;
  fo_crashed_gateway : int;
  fo_route_after : int list;
  fo_reroutes : int;
  fo_reemitted : int;
  fo_dup_drops : int;
  fo_intact : bool;
  fo_partitioned : bool; (* second crash really partitions the vchannel *)
  fo_finish_us : float;
}

(* Sliding-window payoff: the same one-way stream at the same drop
   rate, once with the configured go-back-N window and once degraded to
   stop-and-wait (window = 1). *)
type goodput = {
  gp_size : int;
  gp_messages : int;
  gp_drop_pct : float;
  gp_window : int;
  gp_window_mb_s : float;
  gp_stopwait_mb_s : float;
  gp_speedup : float; (* windowed / stop-and-wait *)
  gp_intact : bool;
}

(* Mid-stream node restarts on a single-gateway route: first the
   gateway dies and comes back (origin logs replay through the route
   hole), then the origin itself dies and comes back with a new crash
   epoch (the session handshake restores its numbering). Every message
   must reach the far side bit-identical, exactly once. *)
type crash_restart = {
  cr_messages : int; (* per phase; two phases *)
  cr_size : int;
  cr_gateway : int;
  cr_restart_us : float;
  cr_delivered : int;
  cr_handshakes : int;
  cr_reroutes : int;
  cr_reemitted : int;
  cr_dup_drops : int;
  cr_exactly_once : bool;
  cr_suspicions : (float * int * int * string * string * float) list;
      (* (at_us, observer, peer, from, to, phi) *)
  cr_flows : Vc.flow_stat list;
  cr_finish_us : float;
}

(* Overload: a sender at full tilt against a receiver whose drain rate
   the fault plane caps two orders of magnitude lower. With credits
   armed, the sender must end up blocked on the credit window (never
   dropping, never queueing unboundedly): delivery stays bit-identical
   and every instrumented buffering point stays under its configured
   bound. *)
type overload = {
  ov_messages : int;
  ov_size : int;
  ov_credits : int;
  ov_mtu : int;
  ov_rx_cap_mb_s : float;
  ov_clean_mb_s : float; (* same stream, no throttle *)
  ov_throttled_mb_s : float;
  ov_stalls : int;
  ov_grants : int;
  ov_probes : int;
  ov_queues : Vc.queue_stat list;
  ov_inbox_peak_bytes : int; (* tcp receive-side backlog, worst conn *)
  ov_sendq_peak_frames : int;
  ov_intact : bool;
  ov_bounded : bool; (* every q_peak <= its q_bound *)
  ov_finish_us : float;
}

(* Slow gateway: a two-segment route whose egress leg drains far slower
   than the ingress leg can deliver. The bounded forwarding pool must
   throttle the ingress to the egress bandwidth (hop-by-hop
   backpressure, not gateway-side queueing), and the gateway must
   report Overloaded through the sentinels while the pool is pinned at
   its high watermark — then clear once the stream drains. *)
type slow_gateway = {
  sg_messages : int;
  sg_size : int;
  sg_credits : int;
  sg_gw_pool : int;
  sg_rx_cap_mb_s : float; (* egress receiver's capped drain rate *)
  sg_ingress_mb_s : float; (* sustained end-to-end rate through the gw *)
  sg_overload_events : int;
  sg_overload_reported : bool; (* Overloaded seen via peer_status/sentinel *)
  sg_overload_cleared : bool; (* no gateway still overloaded at the end *)
  sg_queues : Vc.queue_stat list;
  sg_intact : bool;
  sg_bounded : bool;
  sg_finish_us : float;
}

(* Scheduled aggregation under loss: concurrent small-message logical
   flows on a sched=aggreg vchannel crossing a lossy gateway route.
   Delivery must stay bit-identical per flow while the scheduler
   actually merges — an aggregate lost on the wire is retransmitted as
   one unit by the go-back-N machinery. *)
type sched_chaos = {
  sc_flows : int;
  sc_messages : int; (* per flow *)
  sc_size : int;
  sc_drop_pct : float;
  sc_merged : int; (* frames that shared their wire packet *)
  sc_aggregates : int;
  sc_mean_frames : float;
  sc_flush_full : int;
  sc_flush_deadline : int;
  sc_flush_flow : int;
  sc_reemitted : int;
  sc_dup_drops : int;
  sc_intact : bool;
  sc_finish_us : float;
}

(* Rolling restart on a live-topology vchannel: every rank of the
   redundant-gateway world leaves and comes back mid-sweep — the
   gateways and the receiver drain, restart and rejoin under their own
   epochs; the coordinator (also the sender) rides a crash-epoch
   restart. Delivery must stay exactly-once and bit-identical, no data
   flow may observe Partitioned, and every queue stays under its
   bound. *)
type rolling_restart = {
  rr_messages : int; (* per phase; two phases *)
  rr_size : int;
  rr_restarted : int list; (* every rank, in roll order *)
  rr_epoch_start : int;
  rr_epoch_final : int;
  rr_joins : int; (* epoch swaps that re-admitted a rank *)
  rr_drains : int; (* epoch swaps that removed a rank *)
  rr_delivered : int;
  rr_dup_deliveries : int; (* messages the application saw twice *)
  rr_reroutes : int;
  rr_reemitted : int;
  rr_dup_drops : int; (* wire-level duplicates the rel plane dropped *)
  rr_handshakes : int;
  rr_queues : Vc.queue_stat list;
  rr_partitioned : bool; (* a data flow observed Partitioned *)
  rr_exactly_once : bool;
  rr_bounded : bool;
  rr_finish_us : float;
}

(* Elastic membership under load: one rank joins (or drains) while
   unrelated flows stream through the vchannel. Shared shape for the
   join-under-load and drain-under-load scenarios, told apart by
   [el_op]. *)
type elastic = {
  el_op : string; (* "join" or "drain" *)
  el_messages : int;
  el_size : int;
  el_rank : int; (* the rank that joined / drained *)
  el_epoch_final : int;
  el_routable : bool; (* join: rank reachable; drain: rank off every route *)
  el_status : string; (* peer_status toward the rank after the swap *)
  el_watched : bool; (* some sentinel still probes the rank *)
  el_partitioned : bool; (* an in-flight flow observed Partitioned *)
  el_intact : bool;
  el_finish_us : float;
}

type report = {
  rep_seed : int;
  rep_quick : bool;
  rep_rows : row list;
  rep_failover : failover;
  rep_goodput : goodput;
  rep_crash : crash_restart;
  rep_overload : overload;
  rep_slow_gateway : slow_gateway;
  rep_sched : sched_chaos;
  rep_rolling : rolling_restart;
  rep_join : elastic;
  rep_drain : elastic;
}

(* ------------------------------------------------------------------ *)
(* A two-node TCP world with a fault plane attached. *)

type tcp_world = {
  fw_engine : Engine.t;
  fw_faults : Faults.t;
  fw_net : Tcpnet.net;
  fw_channel : Channel.t;
  fw_nodes : Node.t array;
}

let faulty_tcp_world ~seed ~drop ~corrupt =
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~name:"eth" ~link:Netparams.fast_ethernet in
  let faults = Faults.create engine ~seed:(Int64.of_int seed) in
  Fabric.set_faults fabric faults;
  let nodes =
    Array.init 2 (fun i ->
        let n = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Fabric.attach fabric n;
        n)
  in
  for i = 0 to 1 do
    if drop > 0.0 then Faults.set_drop faults ~fabric:"eth" ~node:i ~rate:drop;
    if corrupt > 0.0 then
      Faults.set_corrupt faults ~fabric:"eth" ~node:i ~rate:corrupt
  done;
  let net = Tcpnet.make_net engine fabric in
  let s0 = Tcpnet.attach net nodes.(0) and s1 = Tcpnet.attach net nodes.(1) in
  let driver = Madeleine.Pmm_tcp.driver (function 0 -> s0 | _ -> s1) in
  let session = Madeleine.Session.create engine in
  let channel = Channel.create session driver ~ranks:[ 0; 1 ] () in
  { fw_engine = engine; fw_faults = faults; fw_net = net;
    fw_channel = channel; fw_nodes = nodes }

(* Ping-pong with end-to-end integrity verification: both directions
   compare the unpacked bytes against the packed payload. *)
let verified_pingpong w ~size ~iters =
  let ep0 = Channel.endpoint w.fw_channel ~rank:0 in
  let ep1 = Channel.endpoint w.fw_channel ~rank:1 in
  let data = Harness.payload size 9L in
  let intact = ref true in
  let started = ref Time.zero and finished = ref Time.zero in
  Engine.spawn w.fw_engine ~name:"ping" (fun () ->
      started := Engine.now w.fw_engine;
      for _ = 1 to iters do
        let oc = Mad.begin_packing ep0 ~remote:1 in
        Mad.pack oc data;
        Mad.end_packing oc;
        let sink = Bytes.create size in
        let ic = Mad.begin_unpacking_from ep0 ~remote:1 in
        Mad.unpack ic sink;
        Mad.end_unpacking ic;
        if not (Bytes.equal sink data) then intact := false
      done;
      finished := Engine.now w.fw_engine);
  Engine.spawn w.fw_engine ~name:"pong" (fun () ->
      for _ = 1 to iters do
        let sink = Bytes.create size in
        let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
        Mad.unpack ic sink;
        Mad.end_unpacking ic;
        if not (Bytes.equal sink data) then intact := false;
        let oc = Mad.begin_packing ep1 ~remote:0 in
        Mad.pack oc sink;
        Mad.end_packing oc
      done);
  Engine.run w.fw_engine;
  (Time.diff !finished !started / (2 * iters), !intact)

let iters_for size = if size <= 4096 then 6 else 4

let finish_row ~scenario ~drop ~size w (span, intact) =
  let st = Faults.stats w.fw_faults in
  let retransmissions, crc_rejects = Tcpnet.net_stats w.fw_net in
  {
    scenario;
    size;
    drop_pct = drop *. 100.0;
    lat_us = Time.to_us span;
    bw_mb_s = Time.rate_mb_s ~bytes_count:size span;
    drops = st.Faults.frames_dropped;
    corrupts = st.Faults.frames_corrupted;
    dups = st.Faults.frames_duplicated;
    delays = st.Faults.frames_delayed;
    retransmissions;
    crc_rejects;
    intact;
  }

let drop_row ~seed ~drop ~size =
  let w = faulty_tcp_world ~seed ~drop ~corrupt:0.0 in
  finish_row ~scenario:"drop" ~drop ~size w
    (verified_pingpong w ~size ~iters:(iters_for size))

let corrupt_row ~seed ~rate ~size =
  let w = faulty_tcp_world ~seed ~drop:0.0 ~corrupt:rate in
  finish_row ~scenario:"corrupt" ~drop:rate ~size w
    (verified_pingpong w ~size ~iters:(iters_for size))

(* A link flap in the middle of the exchange: everything delivered while
   the link is down is lost and must be retransmitted after it heals. *)
let flap_row ~seed ~size =
  let w = faulty_tcp_world ~seed ~drop:0.0 ~corrupt:0.0 in
  Faults.flap_link w.fw_faults ~fabric:"eth" ~node:0
    ~at:(Time.add Time.zero (Time.us 4_000.0))
    ~duration:(Time.us 5_000.0);
  finish_row ~scenario:"flap" ~drop:0.0 ~size w
    (verified_pingpong w ~size ~iters:8)

(* Duplication and reordering on both endpoints: the receiver's
   go-back-N sequence check must discard the duplicates and the
   retransmission path must repair the holes the overtaking leaves. *)
let reorder_row ~seed ~size =
  let w = faulty_tcp_world ~seed ~drop:0.0 ~corrupt:0.0 in
  for i = 0 to 1 do
    Faults.set_reorder w.fw_faults ~fabric:"eth" ~node:i ~rate:0.05
      ~jitter:(Time.us 300.0);
    Faults.set_duplicate w.fw_faults ~fabric:"eth" ~node:i ~rate:0.03
  done;
  finish_row ~scenario:"reorder" ~drop:0.0 ~size w
    (verified_pingpong w ~size ~iters:(iters_for size))

(* A rogue device monopolizes one host's PCI bus mid-transfer: no loss,
   but every PIO/DMA on that host crawls for the duration. *)
let stall_row ~seed ~size =
  let w = faulty_tcp_world ~seed ~drop:0.0 ~corrupt:0.0 in
  Faults.stall_pci w.fw_faults w.fw_nodes.(1)
    ~at:(Time.add Time.zero (Time.us 2_000.0))
    ~duration:(Time.us 4_000.0);
  finish_row ~scenario:"pci-stall" ~drop:0.0 ~size w
    (verified_pingpong w ~size ~iters:4)

(* ------------------------------------------------------------------ *)
(* Gateway failover: rank 0 talks to rank 3 across two Ethernet
   segments joined by two redundant gateways (ranks 1 and 2). The
   first-hop gateway is crashed after the first message lands; the
   remaining messages must arrive intact over the recomputed route.
   Crashing the second gateway then partitions the virtual channel. *)

let failover_run ~seed ~size ~messages =
  let engine = Engine.create () in
  let faults = Faults.create engine ~seed:(Int64.of_int seed) in
  let fab_a =
    Fabric.create engine ~name:"ethA" ~link:Netparams.fast_ethernet
  in
  let fab_b =
    Fabric.create engine ~name:"ethB" ~link:Netparams.fast_ethernet
  in
  Fabric.set_faults fab_a faults;
  Fabric.set_faults fab_b faults;
  let nodes =
    Array.init 4 (fun i ->
        Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i)
  in
  List.iter (fun i -> Fabric.attach fab_a nodes.(i)) [ 0; 1; 2 ];
  List.iter (fun i -> Fabric.attach fab_b nodes.(i)) [ 1; 2; 3 ];
  let net_a = Tcpnet.make_net engine fab_a in
  let net_b = Tcpnet.make_net engine fab_b in
  let stacks_a = Hashtbl.create 4 and stacks_b = Hashtbl.create 4 in
  List.iter
    (fun i -> Hashtbl.add stacks_a i (Tcpnet.attach net_a nodes.(i)))
    [ 0; 1; 2 ];
  List.iter
    (fun i -> Hashtbl.add stacks_b i (Tcpnet.attach net_b nodes.(i)))
    [ 1; 2; 3 ];
  let session = Madeleine.Session.create engine in
  let ch_a =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (Hashtbl.find stacks_a))
      ~ranks:[ 0; 1; 2 ] ()
  in
  let ch_b =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (Hashtbl.find stacks_b))
      ~ranks:[ 1; 2; 3 ] ()
  in
  let vc = Vc.create session ~mtu:4096 ~faults [ ch_a; ch_b ] in
  let gw = List.hd (Vc.route_via vc ~src:0 ~dst:3) in
  let other_gw = if gw = 1 then 2 else 1 in
  let data = Harness.payload size 11L in
  let intact = ref true in
  let partitioned = ref false in
  let route_after = ref [] in
  let finish = ref Time.zero in
  Engine.spawn engine ~name:"sender" (fun () ->
      for _ = 1 to messages do
        let oc = Vc.begin_packing vc ~me:0 ~remote:3 in
        Vc.pack oc data;
        Vc.end_packing oc
      done);
  Engine.spawn engine ~name:"receiver" (fun () ->
      for m = 1 to messages do
        let sink = Bytes.create size in
        let ic = Vc.begin_unpacking_from vc ~me:3 ~remote:0 in
        Vc.unpack ic sink;
        Vc.end_unpacking ic;
        if not (Bytes.equal sink data) then intact := false;
        (* The crash lands while later messages are still in flight. *)
        if m = 1 then Faults.crash_now faults ~node:gw ()
      done;
      finish := Engine.now engine;
      route_after := Vc.route_via vc ~src:0 ~dst:3;
      if List.mem gw !route_after then intact := false;
      Faults.crash_now faults ~node:other_gw ();
      (match Vc.begin_packing vc ~me:0 ~remote:3 with
      | exception Vc.Partitioned _ -> partitioned := true
      | _oc -> ()));
  Engine.run engine;
  let stats =
    match Vc.rel_stats vc with Some s -> s | None -> assert false
  in
  {
    fo_messages = messages;
    fo_size = size;
    fo_crashed_gateway = gw;
    fo_route_after = !route_after;
    fo_reroutes = stats.Vc.reroutes;
    fo_reemitted = stats.Vc.reemitted;
    fo_dup_drops = stats.Vc.dup_drops;
    fo_intact = !intact;
    fo_partitioned = !partitioned;
    fo_finish_us = Time.to_us !finish;
  }

(* ------------------------------------------------------------------ *)
(* Sliding-window goodput: a one-way TCP stream under per-link loss,
   measured end to end (last byte verified at the receiver), with the
   go-back-N window against the same net degraded to stop-and-wait. *)

let goodput_one ~seed ~size ~messages ~window ~drop =
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~name:"eth" ~link:Netparams.fast_ethernet in
  let faults = Faults.create engine ~seed:(Int64.of_int seed) in
  Fabric.set_faults fabric faults;
  let nodes =
    Array.init 2 (fun i ->
        let n = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Fabric.attach fabric n;
        n)
  in
  for i = 0 to 1 do
    if drop > 0.0 then Faults.set_drop faults ~fabric:"eth" ~node:i ~rate:drop
  done;
  let net = Tcpnet.make_net ~window engine fabric in
  let s0 = Tcpnet.attach net nodes.(0) and s1 = Tcpnet.attach net nodes.(1) in
  let c0, c1 = Tcpnet.socketpair s0 s1 in
  let payload m =
    let p = Harness.payload size (Int64.of_int (200 + m)) in
    p
  in
  let intact = ref true in
  let finish = ref Time.zero in
  Engine.spawn engine ~name:"gp-send" (fun () ->
      for m = 0 to messages - 1 do
        Tcpnet.send c0 (payload m)
      done);
  Engine.spawn engine ~name:"gp-recv" (fun () ->
      let buf = Bytes.create size in
      for m = 0 to messages - 1 do
        Tcpnet.recv c1 buf ~off:0 ~len:size;
        if not (Bytes.equal buf (payload m)) then intact := false
      done;
      finish := Engine.now engine);
  Engine.run engine;
  (Time.rate_mb_s ~bytes_count:(size * messages) !finish, !intact)

let goodput_run ~seed ~size ~messages ~window ~drop =
  let window_mb_s, ok_w = goodput_one ~seed ~size ~messages ~window ~drop in
  let stopwait_mb_s, ok_s = goodput_one ~seed ~size ~messages ~window:1 ~drop in
  {
    gp_size = size;
    gp_messages = messages;
    gp_drop_pct = drop *. 100.0;
    gp_window = window;
    gp_window_mb_s = window_mb_s;
    gp_stopwait_mb_s = stopwait_mb_s;
    gp_speedup =
      (if stopwait_mb_s > 0.0 then window_mb_s /. stopwait_mb_s else 0.0);
    gp_intact = ok_w && ok_s;
  }

(* ------------------------------------------------------------------ *)
(* Crash-restart: rank 0 streams to rank 2 through the only gateway
   (rank 1). The gateway dies mid-stream and restarts [restart] later —
   inside the vchannel's patience, so waiting senders ride out the hole
   and origin logs replay through the recomputed route. Once phase one
   is fully delivered, the origin itself dies and restarts with a new
   crash epoch; its next sends block until the receiver's session
   handshake restores the flow cursor, then phase two flows. Delivery
   must be exactly-once, bit-identical, across both restarts. *)

let crash_restart_run ~seed ~size ~messages =
  let engine = Engine.create () in
  let faults = Faults.create engine ~seed:(Int64.of_int seed) in
  let fab_a = Fabric.create engine ~name:"ethA" ~link:Netparams.fast_ethernet in
  let fab_b = Fabric.create engine ~name:"ethB" ~link:Netparams.fast_ethernet in
  Fabric.set_faults fab_a faults;
  Fabric.set_faults fab_b faults;
  let nodes =
    Array.init 3 (fun i ->
        Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i)
  in
  List.iter (fun i -> Fabric.attach fab_a nodes.(i)) [ 0; 1 ];
  List.iter (fun i -> Fabric.attach fab_b nodes.(i)) [ 1; 2 ];
  let net_a = Tcpnet.make_net engine fab_a in
  let net_b = Tcpnet.make_net engine fab_b in
  let stacks_a = Hashtbl.create 4 and stacks_b = Hashtbl.create 4 in
  List.iter
    (fun i -> Hashtbl.add stacks_a i (Tcpnet.attach net_a nodes.(i)))
    [ 0; 1 ];
  List.iter
    (fun i -> Hashtbl.add stacks_b i (Tcpnet.attach net_b nodes.(i)))
    [ 1; 2 ];
  let session = Madeleine.Session.create engine in
  let ch_a =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (Hashtbl.find stacks_a))
      ~ranks:[ 0; 1 ] ()
  in
  let ch_b =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (Hashtbl.find stacks_b))
      ~ranks:[ 1; 2 ] ()
  in
  let vc = Vc.create session ~mtu:4096 ~faults [ ch_a; ch_b ] in
  let restart = Time.us 5_000.0 in
  let total = 2 * messages in
  let payload_of m =
    let p = Harness.payload size (Int64.of_int 17) in
    Bytes.set_int32_le p 0 (Int32.of_int m);
    p
  in
  let received = Array.make total 0 in
  let intact = ref true in
  let finish = ref Time.zero in
  Engine.spawn engine ~name:"cr-sender" (fun () ->
      for m = 0 to messages - 1 do
        let oc = Vc.begin_packing vc ~me:0 ~remote:2 in
        Vc.pack oc (payload_of m);
        Vc.end_packing oc
      done;
      (* The origin is crashed (by the receiver, below) once phase one
         has fully landed; this thread models the restarted process
         resuming the stream after the reboot. *)
      while Faults.epoch faults 0 = 0 do
        Engine.sleep (Time.us 250.0)
      done;
      for m = messages to total - 1 do
        let oc = Vc.begin_packing vc ~me:0 ~remote:2 in
        Vc.pack oc (payload_of m);
        Vc.end_packing oc
      done);
  Engine.spawn engine ~name:"cr-receiver" (fun () ->
      for m = 1 to total do
        let sink = Bytes.create size in
        let ic = Vc.begin_unpacking_from vc ~me:2 ~remote:0 in
        Vc.unpack ic sink;
        Vc.end_unpacking ic;
        let idx = Int32.to_int (Bytes.get_int32_le sink 0) in
        if idx < 0 || idx >= total then intact := false
        else begin
          received.(idx) <- received.(idx) + 1;
          if not (Bytes.equal sink (payload_of idx)) then intact := false
        end;
        if m = 1 then Faults.crash_now faults ~node:1 ~restart_after:restart ();
        if m = messages then
          Faults.crash_now faults ~node:0 ~restart_after:(Time.us 2_000.0) ()
      done;
      finish := Engine.now engine);
  Engine.run engine;
  let stats = match Vc.rel_stats vc with Some s -> s | None -> assert false in
  let suspicions =
    List.map
      (fun (observer, ev) ->
        ( Time.to_us (Time.diff ev.Madeleine.Sentinel.ev_at Time.zero),
          observer,
          ev.Madeleine.Sentinel.ev_peer,
          Madeleine.Sentinel.state_name ev.Madeleine.Sentinel.ev_from,
          Madeleine.Sentinel.state_name ev.Madeleine.Sentinel.ev_to,
          ev.Madeleine.Sentinel.ev_phi ))
      (Vc.suspicion_timeline vc)
  in
  {
    cr_messages = messages;
    cr_size = size;
    cr_gateway = 1;
    cr_restart_us = Time.to_us restart;
    cr_delivered = Array.fold_left ( + ) 0 received;
    cr_handshakes = stats.Vc.handshakes;
    cr_reroutes = stats.Vc.reroutes;
    cr_reemitted = stats.Vc.reemitted;
    cr_dup_drops = stats.Vc.dup_drops;
    cr_exactly_once =
      !intact && Array.for_all (fun n -> n = 1) received;
    cr_suspicions = suspicions;
    cr_flows = Vc.flow_stats vc;
    cr_finish_us = Time.to_us !finish;
  }

(* ------------------------------------------------------------------ *)
(* Live-topology scenarios: the redundant-gateway world of the failover
   run, but with the membership promoted to a versioned epoch snapshot
   (coordinator rank 0, epoch 1) so ranks can drain out of and join
   back into the session while traffic flows. *)

let elastic_world ~seed =
  let engine = Engine.create () in
  let faults = Faults.create engine ~seed:(Int64.of_int seed) in
  let fab_a = Fabric.create engine ~name:"ethA" ~link:Netparams.fast_ethernet in
  let fab_b = Fabric.create engine ~name:"ethB" ~link:Netparams.fast_ethernet in
  Fabric.set_faults fab_a faults;
  Fabric.set_faults fab_b faults;
  let nodes =
    Array.init 4 (fun i ->
        Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i)
  in
  List.iter (fun i -> Fabric.attach fab_a nodes.(i)) [ 0; 1; 2 ];
  List.iter (fun i -> Fabric.attach fab_b nodes.(i)) [ 1; 2; 3 ];
  let net_a = Tcpnet.make_net engine fab_a in
  let net_b = Tcpnet.make_net engine fab_b in
  let stacks_a = Hashtbl.create 4 and stacks_b = Hashtbl.create 4 in
  List.iter
    (fun i -> Hashtbl.add stacks_a i (Tcpnet.attach net_a nodes.(i)))
    [ 0; 1; 2 ];
  List.iter
    (fun i -> Hashtbl.add stacks_b i (Tcpnet.attach net_b nodes.(i)))
    [ 1; 2; 3 ];
  let session = Madeleine.Session.create engine in
  let ch_a =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (Hashtbl.find stacks_a))
      ~ranks:[ 0; 1; 2 ] ()
  in
  let ch_b =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (Hashtbl.find stacks_b))
      ~ranks:[ 1; 2; 3 ] ()
  in
  let vc =
    Vc.create session ~mtu:4096 ~faults ~topology:1 ~coordinator:0
      [ ch_a; ch_b ]
  in
  (engine, faults, vc)

let health_name h = Format.asprintf "%a" Madeleine.Iface.pp_health h

let epoch_of vc =
  match Vc.topology vc with
  | Some snap -> Madeleine.Topology.epoch snap
  | None -> -1

(* Does any member rank's sentinel still probe [rank]? *)
let some_sentinel_watches vc ~ranks ~rank =
  List.exists
    (fun r ->
      r <> rank
      &&
      match Vc.sentinel vc ~rank:r with
      | Some s -> List.mem rank (Madeleine.Sentinel.watched s)
      | None -> false)
    ranks

let rolling_restart_run ~seed ~size ~messages =
  let engine, faults, vc = elastic_world ~seed in
  let total = 2 * messages in
  let payload_of m =
    let p = Harness.payload size (Int64.of_int 29) in
    Bytes.set_int32_le p 0 (Int32.of_int m);
    p
  in
  let received = Array.make total 0 in
  let intact = ref true and partitioned = ref false in
  let delivered = ref 0 in
  let phase2_go = ref false in
  let finish = ref Time.zero in
  let rolled = ref [] in
  let epoch_start = epoch_of vc in
  let gw = List.hd (Vc.route_via vc ~src:0 ~dst:3) in
  let other_gw = if gw = 1 then 2 else 1 in
  let send_range lo hi =
    for m = lo to hi do
      match Vc.begin_packing vc ~me:0 ~remote:3 with
      | exception Vc.Partitioned _ -> partitioned := true
      | oc ->
          Vc.pack oc (payload_of m);
          Vc.end_packing oc
    done
  in
  Engine.spawn engine ~name:"rr-sender" (fun () ->
      send_range 0 (messages - 1);
      (* The origin is crashed by the controller between phases; this
         thread models the restarted process resuming the stream. *)
      while not !phase2_go do
        Engine.sleep (Time.us 250.0)
      done;
      send_range messages (total - 1));
  Engine.spawn engine ~name:"rr-receiver" (fun () ->
      for _ = 1 to total do
        let sink = Bytes.create size in
        let ic = Vc.begin_unpacking_from vc ~me:3 ~remote:0 in
        Vc.unpack ic sink;
        Vc.end_unpacking ic;
        let idx = Int32.to_int (Bytes.get_int32_le sink 0) in
        (if idx < 0 || idx >= total then intact := false
         else begin
           received.(idx) <- received.(idx) + 1;
           if not (Bytes.equal sink (payload_of idx)) then intact := false
         end);
        incr delivered
      done;
      finish := Engine.now engine);
  Engine.spawn engine ~name:"rr-controller" (fun () ->
      let wait_for cond =
        while not (cond ()) do
          Engine.sleep (Time.us 250.0)
        done
      in
      let restart_of node =
        let before = Faults.epoch faults node in
        Faults.crash_now faults ~node ~restart_after:(Time.us 2_000.0) ();
        wait_for (fun () -> Faults.epoch faults node > before)
      in
      let roll rank =
        (match Vc.drain vc ~rank with
        | () -> ()
        | exception Vc.Partitioned _ -> partitioned := true);
        restart_of rank;
        (match Vc.join vc ~rank with
        | (_ : int) -> ()
        | exception Vc.Partitioned _ -> partitioned := true);
        rolled := !rolled @ [ rank ]
      in
      wait_for (fun () -> !delivered >= 1);
      (* The spare gateway first (no route impact), then the on-route
         gateway — the 0 -> 3 flow must reroute mid-stream. *)
      roll other_gw;
      roll gw;
      (* The receiver drains between phases, once its journal is
         covered by cumulative acks. *)
      wait_for (fun () -> !delivered >= messages);
      roll 3;
      (* The coordinator cannot drain itself: a crash-epoch restart,
         repaired by the session handshake, stands in. *)
      restart_of 0;
      rolled := !rolled @ [ 0 ];
      phase2_go := true);
  Engine.run engine;
  let stats = match Vc.rel_stats vc with Some s -> s | None -> assert false in
  let topo =
    match Vc.topology_stats vc with Some s -> s | None -> assert false
  in
  let queues = Vc.queue_stats vc in
  let bounded =
    List.for_all
      (fun q ->
        match q.Vc.q_bound with Some b -> q.Vc.q_peak <= b | None -> true)
      queues
  in
  {
    rr_messages = messages;
    rr_size = size;
    rr_restarted = !rolled;
    rr_epoch_start = epoch_start;
    rr_epoch_final = topo.Vc.topo_epoch;
    rr_joins = topo.Vc.topo_joins;
    rr_drains = topo.Vc.topo_drains;
    rr_delivered = Array.fold_left ( + ) 0 received;
    rr_dup_deliveries =
      Array.fold_left (fun acc n -> acc + max 0 (n - 1)) 0 received;
    rr_reroutes = stats.Vc.reroutes;
    rr_reemitted = stats.Vc.reemitted;
    rr_dup_drops = stats.Vc.dup_drops;
    rr_handshakes = stats.Vc.handshakes;
    rr_queues = queues;
    rr_partitioned = !partitioned;
    rr_exactly_once = !intact && Array.for_all (fun n -> n = 1) received;
    rr_bounded = bounded;
    rr_finish_us = Time.to_us !finish;
  }

let join_load_run ~seed ~size ~messages =
  let engine, _faults, vc = elastic_world ~seed in
  let payload m = Harness.payload size (Int64.of_int (400 + m)) in
  let bg_delivered = ref 0 in
  let intact = ref true and partitioned = ref false in
  let joined = ref false in
  let finish = ref Time.zero in
  (* Background load 0 -> 1 runs across the epoch swap. *)
  Engine.spawn engine ~name:"jl-bg-send" (fun () ->
      for m = 0 to messages - 1 do
        match Vc.begin_packing vc ~me:0 ~remote:1 with
        | exception Vc.Partitioned _ -> partitioned := true
        | oc ->
            Vc.pack oc (payload m);
            Vc.end_packing oc
      done);
  Engine.spawn engine ~name:"jl-bg-recv" (fun () ->
      let sink = Bytes.create size in
      for m = 0 to messages - 1 do
        let ic = Vc.begin_unpacking_from vc ~me:1 ~remote:0 in
        Vc.unpack ic sink;
        Vc.end_unpacking ic;
        if not (Bytes.equal sink (payload m)) then intact := false;
        incr bg_delivered
      done);
  (* Once the joiner is routable, a fresh flow targets it. *)
  Engine.spawn engine ~name:"jl-fg-send" (fun () ->
      while not !joined do
        Engine.sleep (Time.us 250.0)
      done;
      for m = 0 to messages - 1 do
        match Vc.begin_packing vc ~me:0 ~remote:3 with
        | exception Vc.Partitioned _ -> partitioned := true
        | oc ->
            Vc.pack oc (payload (1000 + m));
            Vc.end_packing oc
      done);
  Engine.spawn engine ~name:"jl-fg-recv" (fun () ->
      while not !joined do
        Engine.sleep (Time.us 250.0)
      done;
      let sink = Bytes.create size in
      for m = 0 to messages - 1 do
        let ic = Vc.begin_unpacking_from vc ~me:3 ~remote:0 in
        Vc.unpack ic sink;
        Vc.end_unpacking ic;
        if not (Bytes.equal sink (payload (1000 + m))) then intact := false
      done;
      finish := Engine.now engine);
  Engine.spawn engine ~name:"jl-controller" (fun () ->
      (* Rank 3 leaves before any traffic exists, then rejoins while the
         background stream is mid-flight. *)
      Vc.drain vc ~rank:3;
      while !bg_delivered < max 1 (messages / 2) do
        Engine.sleep (Time.us 100.0)
      done;
      (match Vc.join vc ~rank:3 with
      | (_ : int) -> ()
      | exception Vc.Partitioned _ -> partitioned := true);
      joined := true);
  Engine.run engine;
  let routable =
    match Vc.route_via vc ~src:0 ~dst:3 with
    | _ :: _ -> true
    | [] -> false
    | exception _ -> false
  in
  {
    el_op = "join";
    el_messages = messages;
    el_size = size;
    el_rank = 3;
    el_epoch_final = epoch_of vc;
    el_routable = routable;
    el_status = health_name (Vc.peer_status vc ~src:0 ~dst:3);
    el_watched = some_sentinel_watches vc ~ranks:[ 0; 1; 2 ] ~rank:3;
    el_partitioned = !partitioned;
    el_intact = !intact;
    el_finish_us = Time.to_us !finish;
  }

let drain_load_run ~seed ~size ~messages =
  let engine, _faults, vc = elastic_world ~seed in
  let payload_of m =
    let p = Harness.payload size (Int64.of_int 31) in
    Bytes.set_int32_le p 0 (Int32.of_int m);
    p
  in
  let received = Array.make messages 0 in
  let delivered = ref 0 in
  let intact = ref true and partitioned = ref false in
  let finish = ref Time.zero in
  let gw = List.hd (Vc.route_via vc ~src:0 ~dst:3) in
  Engine.spawn engine ~name:"dl-sender" (fun () ->
      for m = 0 to messages - 1 do
        match Vc.begin_packing vc ~me:0 ~remote:3 with
        | exception Vc.Partitioned _ -> partitioned := true
        | oc ->
            Vc.pack oc (payload_of m);
            Vc.end_packing oc
      done);
  Engine.spawn engine ~name:"dl-receiver" (fun () ->
      for _ = 1 to messages do
        let sink = Bytes.create size in
        let ic = Vc.begin_unpacking_from vc ~me:3 ~remote:0 in
        Vc.unpack ic sink;
        Vc.end_unpacking ic;
        let idx = Int32.to_int (Bytes.get_int32_le sink 0) in
        (if idx < 0 || idx >= messages then intact := false
         else begin
           received.(idx) <- received.(idx) + 1;
           if not (Bytes.equal sink (payload_of idx)) then intact := false
         end);
        incr delivered
      done;
      finish := Engine.now engine);
  Engine.spawn engine ~name:"dl-controller" (fun () ->
      (* The on-route gateway drains mid-stream: the 0 -> 3 flow must
         reroute through the spare with no Partitioned. *)
      while !delivered < 1 do
        Engine.sleep (Time.us 250.0)
      done;
      match Vc.drain vc ~rank:gw with
      | () -> ()
      | exception Vc.Partitioned _ -> partitioned := true);
  Engine.run engine;
  let off_route =
    match Vc.route_via vc ~src:0 ~dst:3 with
    | hops -> not (List.mem gw hops)
    | exception _ -> false
  in
  {
    el_op = "drain";
    el_messages = messages;
    el_size = size;
    el_rank = gw;
    el_epoch_final = epoch_of vc;
    el_routable = off_route;
    el_status = health_name (Vc.peer_status vc ~src:0 ~dst:gw);
    el_watched =
      some_sentinel_watches vc
        ~ranks:(List.filter (fun r -> r <> gw) [ 0; 1; 2; 3 ])
        ~rank:gw;
    el_partitioned = !partitioned;
    el_intact = !intact && Array.for_all (fun n -> n = 1) received;
    el_finish_us = Time.to_us !finish;
  }

(* ------------------------------------------------------------------ *)
(* Partition chaos: four ranks on one Ethernet segment with the
   coordinator seat quorum-elected, cuts injected at the fault plane.
   The gates are the paper-grade partition invariants: at most one
   coordinator ever commits an epoch, the majority side keeps its
   goodput during the cut, the minority surfaces typed errors instead
   of hanging, and post-heal delivery is exactly-once. *)

type partition_chaos = {
  pt_workload : string;
  pt_messages : int;
  pt_size : int;
  pt_cycles : int; (* partition/heal cycles injected *)
  pt_coordinator_before : int;
  pt_coordinator_after : int; (* -1 = no committed coordinator *)
  pt_elections : int;
  pt_epochs_unique : bool;
  pt_reelect_latency_us : float;
  pt_cut_delivered : int;
  pt_minority_typed : bool;
  pt_pending_after : int;
  pt_members_final : int list;
  pt_reemitted : int;
  pt_exactly_once : bool;
  pt_finish_us : float;
}

let election_world ~seed =
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~name:"eth" ~link:Netparams.fast_ethernet in
  let faults = Faults.create engine ~seed:(Int64.of_int seed) in
  Fabric.set_faults fabric faults;
  let nodes =
    Array.init 4 (fun i ->
        let n = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Fabric.attach fabric n;
        n)
  in
  let net = Tcpnet.make_net engine fabric in
  let stacks = Array.map (Tcpnet.attach net) nodes in
  let session = Madeleine.Session.create engine in
  let ch =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (fun i -> stacks.(i)))
      ~ranks:[ 0; 1; 2; 3 ] ()
  in
  let vc =
    Vc.create session ~mtu:4096 ~faults ~topology:1 ~coordinator:0
      ~election:true [ ch ]
  in
  (engine, faults, vc)

(* Sentinel probing is activity-gated; the streams pause during a cut,
   so keep every detector's grace window open explicitly. *)
let spawn_probe_loop engine vc ~stop =
  Engine.spawn engine ~name:"pt-prober" (fun () ->
      while not !stop do
        List.iter
          (fun r ->
            match Vc.sentinel vc ~rank:r with
            | Some s -> Madeleine.Sentinel.touch s
            | None -> ())
          (Vc.ranks vc);
        Engine.sleep (Time.us 400.0)
      done)

let members_of vc =
  match Vc.topology vc with
  | Some snap -> List.sort compare (Madeleine.Topology.ranks snap)
  | None -> []

let election_summary vc =
  match Vc.election_stats vc with Some s -> s | None -> assert false

let commit_epochs_unique (s : Vc.election_stats) =
  let epochs = List.map fst s.Vc.commits in
  List.sort_uniq compare epochs = List.sort compare epochs

(* A deadline-bounded condition wait, so a broken invariant trips a
   gate instead of hanging the harness. *)
let wait_until engine ?(deadline_us = 200_000.0) cond =
  let deadline = Time.add (Engine.now engine) (Time.us deadline_us) in
  while (not (cond ())) && Time.( < ) (Engine.now engine) deadline do
    Engine.sleep (Time.us 250.0)
  done

(* One exactly-once verified stream: sender/receiver pair with per-index
   delivery counts. [gate] parks the sender until released; [retry]
   keeps retrying a [Partitioned] send (a post-heal flow starts before
   the suspicion has drained). *)
let pt_stream engine vc ~tag ~src ~dst ~size ~messages ?(gate = ref true)
    ?(retry = false) ~on_delivery () =
  let payload_of m =
    let p = Harness.payload size (Int64.of_int (tag + m)) in
    Bytes.set_int32_le p 0 (Int32.of_int m);
    p
  in
  let received = Array.make messages 0 in
  let intact = ref true in
  Engine.spawn engine ~name:(Printf.sprintf "pt-send-%d-%d" src dst)
    (fun () ->
      while not !gate do
        Engine.sleep (Time.us 250.0)
      done;
      for m = 0 to messages - 1 do
        let rec send tries =
          match Vc.begin_packing vc ~me:src ~remote:dst with
          | exception Vc.Partitioned _ when retry && tries < 400 ->
              Engine.sleep (Time.us 500.0);
              send (tries + 1)
          | exception Vc.Partitioned _ -> intact := false
          | oc ->
              Vc.pack oc (payload_of m);
              Vc.end_packing oc
        in
        send 0
      done);
  Engine.spawn engine ~name:(Printf.sprintf "pt-recv-%d-%d" src dst)
    (fun () ->
      while not !gate do
        Engine.sleep (Time.us 250.0)
      done;
      for _ = 1 to messages do
        let sink = Bytes.create size in
        let ic = Vc.begin_unpacking_from vc ~me:dst ~remote:src in
        Vc.unpack ic sink;
        Vc.end_unpacking ic;
        let idx = Int32.to_int (Bytes.get_int32_le sink 0) in
        (if idx < 0 || idx >= messages then intact := false
         else begin
           received.(idx) <- received.(idx) + 1;
           if not (Bytes.equal sink (payload_of idx)) then intact := false
         end);
        on_delivery ()
      done);
  fun () -> !intact && Array.for_all (fun n -> n = 1) received

(* The majority keeps working while a non-member host is cut off: rank 3
   drains cleanly, the cut isolates its (now outsider) host, a
   mid-stream 0 -> 1 flow keeps delivering, the cut-side join parks with
   the typed [No_quorum], and the heal replays it — after which a fresh
   0 -> 3 stream must land exactly-once over the revived paths. *)
let partition_majority_run ~seed ~size ~messages =
  let engine, faults, vc = election_world ~seed in
  let stop = ref false in
  spawn_probe_loop engine vc ~stop;
  let coordinator_before =
    match Vc.coordinator vc with Some c -> c | None -> -1
  in
  let cut_active = ref false in
  let cut_delivered = ref 0 in
  let bg_delivered = ref 0 in
  let bg_half = ref false in
  let minority_typed = ref false in
  let fg_gate = ref false in
  let finish = ref Time.zero in
  let bg_ok =
    pt_stream engine vc ~tag:500 ~src:0 ~dst:1 ~size
      ~messages:(2 * messages)
      ~gate:(ref true)
      ~on_delivery:(fun () ->
        incr bg_delivered;
        if !cut_active then incr cut_delivered;
        if !bg_delivered = messages then bg_half := true)
      ()
  in
  let fg_ok =
    pt_stream engine vc ~tag:900 ~src:0 ~dst:3 ~size ~messages ~gate:fg_gate
      ~retry:true
      ~on_delivery:(fun () -> ())
      ()
  in
  Engine.spawn engine ~name:"pt-controller" (fun () ->
      (* Rank 3 leaves cleanly before any cut exists. *)
      (match Vc.drain vc ~rank:3 with
      | () -> ()
      | exception (Vc.Partitioned _ | Vc.No_quorum _) -> ());
      wait_until engine (fun () -> !bg_half);
      Faults.partition faults ~fabric:"eth" [ 3 ] [ 0; 1; 2 ];
      cut_active := true;
      Engine.sleep (Time.ms 10.0);
      (* The cut-side host asks back in: its request cannot reach the
         coordinator, so the intent parks with the typed error. *)
      (match Vc.join vc ~rank:3 with
      | (_ : int) -> ()
      | exception Vc.No_quorum _ -> minority_typed := true
      | exception Vc.Partitioned _ -> ());
      wait_until engine (fun () -> !bg_delivered >= 2 * messages);
      Faults.heal faults ~fabric:"eth";
      cut_active := false;
      (* The replay must re-admit rank 3 before the fresh stream can
         target it. *)
      wait_until engine (fun () -> List.mem 3 (members_of vc));
      fg_gate := true;
      wait_until engine ~deadline_us:500_000.0 (fun () -> fg_ok ());
      Engine.sleep (Time.ms 5.0);
      finish := Engine.now engine;
      stop := true);
  Engine.run engine;
  let stats = election_summary vc in
  let rel = match Vc.rel_stats vc with Some s -> s | None -> assert false in
  {
    pt_workload = "partition-majority";
    pt_messages = messages;
    pt_size = size;
    pt_cycles = 1;
    pt_coordinator_before = coordinator_before;
    pt_coordinator_after =
      (match Vc.coordinator vc with Some c -> c | None -> -1);
    pt_elections = stats.Vc.elections;
    pt_epochs_unique = commit_epochs_unique stats;
    pt_reelect_latency_us = stats.Vc.last_latency_us;
    pt_cut_delivered = !cut_delivered;
    pt_minority_typed = !minority_typed;
    pt_pending_after = stats.Vc.pending;
    pt_members_final = members_of vc;
    pt_reemitted = rel.Vc.reemitted;
    pt_exactly_once = bg_ok () && fg_ok ();
    pt_finish_us = Time.to_us !finish;
  }

(* The coordinator itself is cut off: the majority elects its lowest
   member and keeps its goodput, the isolated old seat sees typed
   [Partitioned] flows and no quorum, and after the heal it rejoins as
   a plain member — a fresh stream from it must land exactly-once. *)
let coordinator_loss_run ~seed ~size ~messages =
  let engine, faults, vc = election_world ~seed in
  let stop = ref false in
  spawn_probe_loop engine vc ~stop;
  let coordinator_before =
    match Vc.coordinator vc with Some c -> c | None -> -1
  in
  let cut_active = ref false in
  let cut_delivered = ref 0 in
  let bg_delivered = ref 0 in
  let bg_half = ref false in
  let minority_typed = ref false in
  let fg_gate = ref false in
  let finish = ref Time.zero in
  let bg_ok =
    pt_stream engine vc ~tag:600 ~src:1 ~dst:3 ~size
      ~messages:(2 * messages)
      ~gate:(ref true)
      ~on_delivery:(fun () ->
        incr bg_delivered;
        if !cut_active then incr cut_delivered;
        if !bg_delivered = messages then bg_half := true)
      ()
  in
  let fg_ok =
    pt_stream engine vc ~tag:950 ~src:0 ~dst:3 ~size ~messages ~gate:fg_gate
      ~retry:true
      ~on_delivery:(fun () -> ())
      ()
  in
  Engine.spawn engine ~name:"pt-controller" (fun () ->
      wait_until engine (fun () -> !bg_half);
      Faults.partition faults ~fabric:"eth" [ coordinator_before ]
        (List.filter (fun r -> r <> coordinator_before) [ 0; 1; 2; 3 ]);
      cut_active := true;
      (* The majority stands its lowest member for the vacated seat. *)
      wait_until engine (fun () ->
          match Vc.coordinator vc with
          | Some c -> c <> coordinator_before
          | None -> false);
      (* The deposed side: once its own detectors caught up, it has no
         quorum and a new flow fails with the typed error immediately
         instead of hanging on re-emission. *)
      wait_until engine (fun () ->
          not (Vc.has_quorum vc ~viewer:coordinator_before));
      (minority_typed :=
         (not (Vc.has_quorum vc ~viewer:coordinator_before))
         &&
         match Vc.begin_packing vc ~me:coordinator_before ~remote:1 with
         | exception Vc.Partitioned _ -> true
         | _oc -> false);
      wait_until engine (fun () -> !bg_delivered >= 2 * messages);
      Faults.heal faults ~fabric:"eth";
      cut_active := false;
      fg_gate := true;
      wait_until engine ~deadline_us:500_000.0 (fun () -> fg_ok ());
      Engine.sleep (Time.ms 5.0);
      finish := Engine.now engine;
      stop := true);
  Engine.run engine;
  let stats = election_summary vc in
  let rel = match Vc.rel_stats vc with Some s -> s | None -> assert false in
  {
    pt_workload = "coordinator-loss";
    pt_messages = messages;
    pt_size = size;
    pt_cycles = 1;
    pt_coordinator_before = coordinator_before;
    pt_coordinator_after =
      (match Vc.coordinator vc with Some c -> c | None -> -1);
    pt_elections = stats.Vc.elections;
    pt_epochs_unique = commit_epochs_unique stats;
    pt_reelect_latency_us = stats.Vc.last_latency_us;
    pt_cut_delivered = !cut_delivered;
    pt_minority_typed = !minority_typed;
    pt_pending_after = stats.Vc.pending;
    pt_members_final = members_of vc;
    pt_reemitted = rel.Vc.reemitted;
    pt_exactly_once = bg_ok () && fg_ok ();
    pt_finish_us = Time.to_us !finish;
  }

(* Repeated cut/heal cycles, each isolating whoever holds the seat: the
   coordinator flip-flops between the two lowest ranks, every cycle
   commits exactly one new epoch (the audit trail stays duplicate-free),
   and a stream between two never-cut ranks keeps delivering through
   the churn. *)
let partition_flapping_run ~seed ~size ~messages ~cycles =
  let engine, faults, vc = election_world ~seed in
  let stop = ref false in
  spawn_probe_loop engine vc ~stop;
  let coordinator_before =
    match Vc.coordinator vc with Some c -> c | None -> -1
  in
  let cut_active = ref false in
  let cut_delivered = ref 0 in
  let bg_done = ref false in
  let minority_typed = ref true in
  let finish = ref Time.zero in
  let total = messages * cycles in
  let bg_ok =
    pt_stream engine vc ~tag:700 ~src:2 ~dst:3 ~size ~messages:total
      ~gate:(ref true)
      ~on_delivery:(fun () -> if !cut_active then incr cut_delivered)
      ()
  in
  Engine.spawn engine ~name:"pt-bg-watch" (fun () ->
      wait_until engine ~deadline_us:1_000_000.0 (fun () -> bg_ok ());
      bg_done := true);
  Engine.spawn engine ~name:"pt-controller" (fun () ->
      for _ = 1 to cycles do
        let seat =
          match Vc.coordinator vc with Some c -> c | None -> 0
        in
        Faults.partition faults ~fabric:"eth" [ seat ]
          (List.filter (fun r -> r <> seat) [ 0; 1; 2; 3 ]);
        cut_active := true;
        wait_until engine (fun () ->
            match Vc.coordinator vc with
            | Some c -> c <> seat
            | None -> false);
        (* The isolated old seat must know it lost quorum. *)
        if Vc.has_quorum vc ~viewer:seat then minority_typed := false;
        Faults.heal faults ~fabric:"eth";
        cut_active := false;
        (* Let the suspicion drain before the next flap, so each cycle
           starts from a fully trusted membership. *)
        Engine.sleep (Time.ms 15.0)
      done;
      wait_until engine ~deadline_us:1_000_000.0 (fun () -> !bg_done);
      Engine.sleep (Time.ms 5.0);
      finish := Engine.now engine;
      stop := true);
  Engine.run engine;
  let stats = election_summary vc in
  let rel = match Vc.rel_stats vc with Some s -> s | None -> assert false in
  {
    pt_workload = "partition-flapping";
    pt_messages = total;
    pt_size = size;
    pt_cycles = cycles;
    pt_coordinator_before = coordinator_before;
    pt_coordinator_after =
      (match Vc.coordinator vc with Some c -> c | None -> -1);
    pt_elections = stats.Vc.elections;
    pt_epochs_unique = commit_epochs_unique stats;
    pt_reelect_latency_us = stats.Vc.last_latency_us;
    pt_cut_delivered = !cut_delivered;
    pt_minority_typed = !minority_typed;
    pt_pending_after = stats.Vc.pending;
    pt_members_final = members_of vc;
    pt_reemitted = rel.Vc.reemitted;
    pt_exactly_once = bg_ok ();
    pt_finish_us = Time.to_us !finish;
  }

let partition_gates p =
  let w = p.pt_workload in
  [
    (w ^ ": at most one coordinator committed per epoch", p.pt_epochs_unique);
    (w ^ ": majority goodput continued during the cut", p.pt_cut_delivered > 0);
    (w ^ ": minority surfaced typed errors, never hung", p.pt_minority_typed);
    (w ^ ": no intent left parked after the heal", p.pt_pending_after = 0);
    (w ^ ": post-heal delivery exactly-once, bit-identical",
     p.pt_exactly_once);
  ]
  @ (match w with
    | "partition-majority" ->
        [
          ( w ^ ": coordinator seat never moved",
            p.pt_coordinator_after = p.pt_coordinator_before );
          ( w ^ ": heal replayed the parked join",
            p.pt_members_final = [ 0; 1; 2; 3 ] );
        ]
    | "coordinator-loss" ->
        [
          ( w ^ ": majority elected a replacement coordinator",
            p.pt_elections >= 1
            && p.pt_coordinator_after >= 0
            && p.pt_coordinator_after <> p.pt_coordinator_before );
          (w ^ ": re-election latency measured", p.pt_reelect_latency_us > 0.0);
        ]
    | _ ->
        [
          ( w ^ ": every flap forced a committed re-election",
            p.pt_elections >= p.pt_cycles );
          ( w ^ ": membership survived the flapping",
            p.pt_members_final = [ 0; 1; 2; 3 ] );
        ])

let partition_line p =
  Printf.sprintf
    "%s: %d x %d B over %d cut/heal cycle(s); coordinator %d -> %d \
     (%d election(s), epochs-unique=%s, last re-election %.2f us), \
     %d delivered mid-cut, minority-typed=%s, pending=%d, members=[%s], \
     %d re-emitted, exactly-once=%s, finish=%.2f us\n"
    p.pt_workload p.pt_messages p.pt_size p.pt_cycles
    p.pt_coordinator_before p.pt_coordinator_after p.pt_elections
    (if p.pt_epochs_unique then "yes" else "NO")
    p.pt_reelect_latency_us p.pt_cut_delivered
    (if p.pt_minority_typed then "yes" else "NO")
    p.pt_pending_after
    (String.concat "; " (List.map string_of_int p.pt_members_final))
    p.pt_reemitted
    (if p.pt_exactly_once then "yes" else "NO")
    p.pt_finish_us

(* ------------------------------------------------------------------ *)
(* Overload: one reliable credit-armed vchannel over a single TCP
   segment; the receiving host's drain rate is capped at 1/100 of the
   clean stream's. Run once clean (no cap) for the mismatch baseline,
   once throttled for the backpressure assertions. *)

let overload_one ~seed ~size ~messages ~credits ~mtu ~rx_cap =
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~name:"eth" ~link:Netparams.fast_ethernet in
  let faults = Faults.create engine ~seed:(Int64.of_int seed) in
  Fabric.set_faults fabric faults;
  let nodes =
    Array.init 2 (fun i ->
        let n = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Fabric.attach fabric n;
        n)
  in
  ignore nodes;
  (match rx_cap with
  | Some cap -> Faults.slow_receiver faults ~fabric:"eth" ~node:1 ~mb_per_s:cap
  | None -> ());
  let net = Tcpnet.make_net engine fabric in
  let s0 = Tcpnet.attach net nodes.(0) and s1 = Tcpnet.attach net nodes.(1) in
  let session = Madeleine.Session.create engine in
  let channel =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (function 0 -> s0 | _ -> s1))
      ~ranks:[ 0; 1 ] ()
  in
  let vc = Vc.create session ~mtu ~credits ~faults [ channel ] in
  let payload_of m = Harness.payload size (Int64.of_int (300 + m)) in
  let intact = ref true in
  let finish = ref Time.zero in
  Engine.spawn engine ~name:"ov-sender" (fun () ->
      for m = 0 to messages - 1 do
        let oc = Vc.begin_packing vc ~me:0 ~remote:1 in
        Vc.pack oc (payload_of m);
        Vc.end_packing oc
      done);
  Engine.spawn engine ~name:"ov-receiver" (fun () ->
      for m = 0 to messages - 1 do
        let sink = Bytes.create size in
        let ic = Vc.begin_unpacking_from vc ~me:1 ~remote:0 in
        Vc.unpack ic sink;
        Vc.end_unpacking ic;
        if not (Bytes.equal sink (payload_of m)) then intact := false
      done;
      finish := Engine.now engine);
  Engine.run engine;
  let rate = Time.rate_mb_s ~bytes_count:(size * messages) !finish in
  (rate, vc, net, !intact, !finish)

let bounded_queues queues =
  List.for_all
    (fun q ->
      match q.Vc.q_bound with Some b -> q.Vc.q_peak <= b | None -> true)
    queues

let overload_run ~seed ~size ~messages ~credits ~mtu ~rx_cap_mb_s =
  let clean_mb_s, _, _, clean_ok, _ =
    overload_one ~seed ~size ~messages ~credits ~mtu ~rx_cap:None
  in
  let throttled_mb_s, vc, net, ok, finish =
    overload_one ~seed ~size ~messages ~credits ~mtu
      ~rx_cap:(Some rx_cap_mb_s)
  in
  let cs =
    match Vc.credit_stats vc with Some s -> s | None -> assert false
  in
  let queues = Vc.queue_stats vc in
  let inbox_peak, sendq_peak = Tcpnet.queue_peaks net in
  {
    ov_messages = messages;
    ov_size = size;
    ov_credits = credits;
    ov_mtu = mtu;
    ov_rx_cap_mb_s = rx_cap_mb_s;
    ov_clean_mb_s = clean_mb_s;
    ov_throttled_mb_s = throttled_mb_s;
    ov_stalls = cs.Vc.stalls;
    ov_grants = cs.Vc.grants;
    ov_probes = cs.Vc.probes;
    ov_queues = queues;
    ov_inbox_peak_bytes = inbox_peak;
    ov_sendq_peak_frames = sendq_peak;
    ov_intact = ok && clean_ok;
    ov_bounded = bounded_queues queues;
    ov_finish_us = Time.to_us finish;
  }

(* ------------------------------------------------------------------ *)
(* Slow gateway: 0 -> 1 (gateway) -> 2 across two Ethernet segments;
   rank 2's drain on the egress segment is capped while the ingress
   segment runs clean. Credits are generous, so the gateway's bounded
   forwarding pool is the active constraint. *)

let slow_gateway_run ~seed ~size ~messages ~credits ~gw_pool ~rx_cap_mb_s =
  let engine = Engine.create () in
  let faults = Faults.create engine ~seed:(Int64.of_int seed) in
  let fab_a = Fabric.create engine ~name:"ethA" ~link:Netparams.fast_ethernet in
  let fab_b = Fabric.create engine ~name:"ethB" ~link:Netparams.fast_ethernet in
  Fabric.set_faults fab_a faults;
  Fabric.set_faults fab_b faults;
  let nodes =
    Array.init 3 (fun i ->
        Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i)
  in
  List.iter (fun i -> Fabric.attach fab_a nodes.(i)) [ 0; 1 ];
  List.iter (fun i -> Fabric.attach fab_b nodes.(i)) [ 1; 2 ];
  Faults.slow_receiver faults ~fabric:"ethB" ~node:2 ~mb_per_s:rx_cap_mb_s;
  let net_a = Tcpnet.make_net engine fab_a in
  let net_b = Tcpnet.make_net engine fab_b in
  let stacks_a = Hashtbl.create 4 and stacks_b = Hashtbl.create 4 in
  List.iter
    (fun i -> Hashtbl.add stacks_a i (Tcpnet.attach net_a nodes.(i)))
    [ 0; 1 ];
  List.iter
    (fun i -> Hashtbl.add stacks_b i (Tcpnet.attach net_b nodes.(i)))
    [ 1; 2 ];
  let session = Madeleine.Session.create engine in
  let ch_a =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (Hashtbl.find stacks_a))
      ~ranks:[ 0; 1 ] ()
  in
  let ch_b =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (Hashtbl.find stacks_b))
      ~ranks:[ 1; 2 ] ()
  in
  let vc =
    Vc.create session ~mtu:4096 ~credits ~gw_pool ~faults [ ch_a; ch_b ]
  in
  let payload_of m = Harness.payload size (Int64.of_int (400 + m)) in
  let intact = ref true in
  let reported = ref false in
  let finish = ref Time.zero in
  Engine.spawn engine ~name:"sg-sender" (fun () ->
      for m = 0 to messages - 1 do
        let oc = Vc.begin_packing vc ~me:0 ~remote:2 in
        Vc.pack oc (payload_of m);
        Vc.end_packing oc
      done);
  Engine.spawn engine ~name:"sg-receiver" (fun () ->
      for m = 0 to messages - 1 do
        let sink = Bytes.create size in
        let ic = Vc.begin_unpacking_from vc ~me:2 ~remote:0 in
        Vc.unpack ic sink;
        Vc.end_unpacking ic;
        if not (Bytes.equal sink (payload_of m)) then intact := false;
        (* Sample the flow health mid-stream: while the pool is pinned
           the gateway must be visible as Overloaded end to end. *)
        if Vc.peer_status vc ~src:0 ~dst:2 = Madeleine.Iface.Overloaded then
          reported := true
      done;
      finish := Engine.now engine);
  Engine.run engine;
  let sentinel_saw_overload =
    List.exists
      (fun (_, ev) -> ev.Madeleine.Sentinel.ev_to = Madeleine.Sentinel.Overloaded)
      (Vc.suspicion_timeline vc)
  in
  let queues = Vc.queue_stats vc in
  {
    sg_messages = messages;
    sg_size = size;
    sg_credits = credits;
    sg_gw_pool = gw_pool;
    sg_rx_cap_mb_s = rx_cap_mb_s;
    sg_ingress_mb_s = Time.rate_mb_s ~bytes_count:(size * messages) !finish;
    sg_overload_events = Vc.overload_events vc;
    sg_overload_reported = !reported || sentinel_saw_overload;
    sg_overload_cleared = Vc.overloaded vc = [];
    sg_queues = queues;
    sg_intact = !intact;
    sg_bounded = bounded_queues queues;
    sg_finish_us = Time.to_us !finish;
  }

(* ------------------------------------------------------------------ *)
(* Scheduled aggregation under loss: many concurrent logical flows of
   small messages cross a gateway on a reliable sched=aggreg vchannel
   while both segments drop frames. Aggregates ride the go-back-N
   window as single units, so TCP retransmission plus the vchannel's
   sequence checks must still deliver every flow bit-identical and in
   per-flow order — and the scheduler must actually have merged
   something, or the scenario is not testing aggregation at all. *)

let sched_aggreg_run ~seed ~flows ~messages ~size ~drop =
  let engine = Engine.create () in
  let faults = Faults.create engine ~seed:(Int64.of_int seed) in
  let fab_a = Fabric.create engine ~name:"ethA" ~link:Netparams.fast_ethernet in
  let fab_b = Fabric.create engine ~name:"ethB" ~link:Netparams.fast_ethernet in
  Fabric.set_faults fab_a faults;
  Fabric.set_faults fab_b faults;
  let nodes =
    Array.init 3 (fun i ->
        Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i)
  in
  List.iter (fun i -> Fabric.attach fab_a nodes.(i)) [ 0; 1 ];
  List.iter (fun i -> Fabric.attach fab_b nodes.(i)) [ 1; 2 ];
  List.iter
    (fun i -> Faults.set_drop faults ~fabric:"ethA" ~node:i ~rate:drop)
    [ 0; 1 ];
  List.iter
    (fun i -> Faults.set_drop faults ~fabric:"ethB" ~node:i ~rate:drop)
    [ 1; 2 ];
  let net_a = Tcpnet.make_net engine fab_a in
  let net_b = Tcpnet.make_net engine fab_b in
  let stacks_a = Hashtbl.create 4 and stacks_b = Hashtbl.create 4 in
  List.iter
    (fun i -> Hashtbl.add stacks_a i (Tcpnet.attach net_a nodes.(i)))
    [ 0; 1 ];
  List.iter
    (fun i -> Hashtbl.add stacks_b i (Tcpnet.attach net_b nodes.(i)))
    [ 1; 2 ];
  let session = Madeleine.Session.create engine in
  let ch_a =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (Hashtbl.find stacks_a))
      ~ranks:[ 0; 1 ] ()
  in
  let ch_b =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (Hashtbl.find stacks_b))
      ~ranks:[ 1; 2 ] ()
  in
  let vc =
    Vc.create session ~mtu:4096 ~faults
      ~sched:(Madeleine.Sched.aggreg ())
      [ ch_a; ch_b ]
  in
  let payload_of flow m =
    Harness.payload size (Int64.of_int (600 + (flow * 1000) + m))
  in
  let intact = ref true in
  let finish = ref Time.zero in
  let done_flows = ref 0 in
  for flow = 1 to flows do
    Engine.spawn engine ~name:(Printf.sprintf "sc-send-%d" flow) (fun () ->
        for m = 0 to messages - 1 do
          let oc = Vc.begin_packing vc ~flow ~me:0 ~remote:2 in
          Vc.pack oc (payload_of flow m);
          Vc.end_packing oc
        done);
    Engine.spawn engine ~name:(Printf.sprintf "sc-recv-%d" flow) (fun () ->
        let sink = Bytes.create size in
        for m = 0 to messages - 1 do
          let ic = Vc.begin_unpacking_from vc ~flow ~me:2 ~remote:0 in
          Vc.unpack ic sink;
          Vc.end_unpacking ic;
          if not (Bytes.equal sink (payload_of flow m)) then intact := false
        done;
        incr done_flows;
        if !done_flows = flows then finish := Engine.now engine)
  done;
  Engine.run engine;
  let ss = match Vc.sched_stats vc with Some s -> s | None -> assert false in
  let rs = match Vc.rel_stats vc with Some s -> s | None -> assert false in
  {
    sc_flows = flows;
    sc_messages = messages;
    sc_size = size;
    sc_drop_pct = drop *. 100.0;
    sc_merged = ss.Madeleine.Sched.sched_merged;
    sc_aggregates = ss.Madeleine.Sched.sched_aggregates;
    sc_mean_frames = ss.Madeleine.Sched.sched_mean_frames;
    sc_flush_full = ss.Madeleine.Sched.sched_flush_full;
    sc_flush_deadline = ss.Madeleine.Sched.sched_flush_deadline;
    sc_flush_flow = ss.Madeleine.Sched.sched_flush_flow;
    sc_reemitted = rs.Vc.reemitted;
    sc_dup_drops = rs.Vc.dup_drops;
    sc_intact = !intact;
    sc_finish_us = Time.to_us !finish;
  }

(* ------------------------------------------------------------------ *)
(* Collectives chaos: the recovery matrix of the {!Madeleine.Collectives}
   layer. Three fault workloads (a rank crash mid-barrier with a
   restart re-join, an Overloaded gateway on the tree spine, a rolling
   restart during a 64-rank allreduce) plus the scaling measurement
   that contrasts the topology-aware tree against the flat star at
   64-1024 ranks — the log-vs-linear headline figure. Everything below
   is a pure function of the seed, like the rest of the harness. *)

module Coll = Madeleine.Collectives

type coll_chaos = {
  co_workload : string;
  co_ranks : int;
  co_expected : int; (* collective calls issued across all ranks *)
  co_completed : int; (* calls that returned a decision *)
  co_failed : int; (* calls that raised Collective_failed *)
  co_agree : bool; (* every completing rank got bit-identical bytes *)
  co_value_ok : bool; (* decided value = sum over the covered ranks *)
  co_covered : int list; (* ranks the last decision covers *)
  co_rejoined : bool; (* >= 1 late contribution answered from the journal *)
  co_spine_ok : bool; (* no Overloaded gateway sat on the sampled spine *)
  co_repairs : int;
  co_packets : int;
  co_combined : int;
  co_root_contribs : int;
  co_dup_suppressed : int;
  co_finish_us : float;
}

(* 64-bit little-endian sum: associative, commutative, and a different
   result for every distinct subset of contributors — so a value match
   against the covered set doubles as the no-double-count check. *)
let coll_sum a b =
  let out = Bytes.create 8 in
  Bytes.set_int64_le out 0
    (Int64.add (Bytes.get_int64_le a 0) (Bytes.get_int64_le b 0));
  out

let coll_contrib r =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int (r + 1));
  b

let coll_expected_sum covered =
  List.fold_left (fun acc r -> Int64.add acc (Int64.of_int (r + 1))) 0L covered

let coll_agree_and_value results covered =
  let vals = Hashtbl.fold (fun _ v acc -> v :: acc) results [] in
  match vals with
  | [] -> (false, false)
  | v :: rest ->
      ( List.for_all (Bytes.equal v) rest,
        Bytes.length v = 8
        && Bytes.get_int64_le v 0 = coll_expected_sum covered )

(* Crash mid-barrier, restart, re-join. Rank 3 holds the first barrier
   open (everyone else is parked waiting for its contribution when the
   controller crashes it), the survivors repair and complete among
   themselves, and the restarted rank re-enters the same collective and
   is answered from the decision journal — then the same cast runs an
   allreduce whose value proves nobody was counted twice. *)
let coll_crash_barrier_run ~seed =
  let engine, faults, vc = elastic_world ~seed in
  let coll = Coll.create ~fanout:2 vc in
  let ranks = Vc.ranks vc in
  let n = List.length ranks in
  let barriers = ref 0 and allreds = ref 0 and failed = ref 0 in
  let results = Hashtbl.create 8 in
  let finish = ref Time.zero in
  List.iter
    (fun r ->
      Engine.spawn engine ~name:(Printf.sprintf "coll-cb-%d" r) (fun () ->
          Engine.sleep (Time.ms (if r = 3 then 6.0 else 1.0));
          (try
             Coll.barrier coll ~me:r;
             incr barriers
           with Coll.Collective_failed _ -> incr failed);
          (try
             let v = Coll.allreduce coll ~me:r ~op:coll_sum (coll_contrib r) in
             Hashtbl.replace results r v;
             incr allreds
           with Coll.Collective_failed _ -> incr failed);
          finish := Engine.now engine))
    ranks;
  Engine.spawn engine ~name:"coll-cb-controller" (fun () ->
      (* Ranks 0-2 are parked in the barrier waiting for rank 3's
         contribution; kill it under them, bring it back after the
         survivors have decided. *)
      Engine.sleep (Time.ms 3.0);
      Faults.crash_now faults ~node:3 ~restart_after:(Time.ms 5.0) ());
  Engine.run engine;
  let st = Coll.stats coll in
  let agree, value_ok = coll_agree_and_value results st.Coll.last_covered in
  {
    co_workload = "coll-crash-barrier";
    co_ranks = n;
    co_expected = 2 * n;
    co_completed = !barriers + !allreds;
    co_failed = !failed;
    co_agree = agree;
    co_value_ok = value_ok;
    co_covered = st.Coll.last_covered;
    co_rejoined = st.Coll.journal_answers >= 1;
    co_spine_ok = true;
    co_repairs = st.Coll.repairs;
    co_packets = st.Coll.packets;
    co_combined = st.Coll.combined;
    co_root_contribs = st.Coll.root_contribs;
    co_dup_suppressed = st.Coll.dup_suppressed;
    co_finish_us = Time.to_us !finish;
  }

(* An Overloaded gateway on the tree spine: a background stream pins
   the on-route gateway's forwarding pool (the PR 5 watermark), the
   health-change hook bumps the repair generation, and the next tree
   hangs the far rank off the spare gateway instead — the barrier
   completes around the load instead of through it. *)
let coll_spine_overload_run ~seed ~size ~messages ~credits ~gw_pool
    ~rx_cap_mb_s =
  let engine = Engine.create () in
  let faults = Faults.create engine ~seed:(Int64.of_int seed) in
  let fab_a = Fabric.create engine ~name:"ethA" ~link:Netparams.fast_ethernet in
  let fab_b = Fabric.create engine ~name:"ethB" ~link:Netparams.fast_ethernet in
  Fabric.set_faults fab_a faults;
  Fabric.set_faults fab_b faults;
  let nodes =
    Array.init 4 (fun i ->
        Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i)
  in
  List.iter (fun i -> Fabric.attach fab_a nodes.(i)) [ 0; 1; 2 ];
  List.iter (fun i -> Fabric.attach fab_b nodes.(i)) [ 1; 2; 3 ];
  Faults.slow_receiver faults ~fabric:"ethB" ~node:3 ~mb_per_s:rx_cap_mb_s;
  let net_a = Tcpnet.make_net engine fab_a in
  let net_b = Tcpnet.make_net engine fab_b in
  let stacks_a = Hashtbl.create 4 and stacks_b = Hashtbl.create 4 in
  List.iter
    (fun i -> Hashtbl.add stacks_a i (Tcpnet.attach net_a nodes.(i)))
    [ 0; 1; 2 ];
  List.iter
    (fun i -> Hashtbl.add stacks_b i (Tcpnet.attach net_b nodes.(i)))
    [ 1; 2; 3 ];
  let session = Madeleine.Session.create engine in
  let ch_a =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (Hashtbl.find stacks_a))
      ~ranks:[ 0; 1; 2 ] ()
  in
  let ch_b =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (Hashtbl.find stacks_b))
      ~ranks:[ 1; 2; 3 ] ()
  in
  let vc =
    Vc.create session ~mtu:4096 ~credits ~gw_pool ~faults [ ch_a; ch_b ]
  in
  let coll = Coll.create ~fanout:2 vc in
  let gw = List.hd (Vc.route_via vc ~src:0 ~dst:3) in
  let other_gw = if gw = 1 then 2 else 1 in
  let payload_of m = Harness.payload size (Int64.of_int (500 + m)) in
  let intact = ref true in
  let barriers = ref 0 and failed = ref 0 in
  let spine = ref [] and overloaded_at_sample = ref [] in
  let finish = ref Time.zero in
  Engine.spawn engine ~name:"coll-so-sender" (fun () ->
      for m = 0 to messages - 1 do
        let oc = Vc.begin_packing vc ~me:0 ~remote:3 in
        Vc.pack oc (payload_of m);
        Vc.end_packing oc
      done);
  Engine.spawn engine ~name:"coll-so-receiver" (fun () ->
      for m = 0 to messages - 1 do
        let sink = Bytes.create size in
        let ic = Vc.begin_unpacking_from vc ~me:3 ~remote:0 in
        Vc.unpack ic sink;
        Vc.end_unpacking ic;
        if not (Bytes.equal sink (payload_of m)) then intact := false
      done;
      finish := Engine.now engine);
  Engine.spawn engine ~name:"coll-so-controller" (fun () ->
      while Vc.overloaded vc = [] do
        Engine.sleep (Time.us 250.0)
      done;
      overloaded_at_sample := Vc.overloaded vc;
      spine := Coll.tree_spine coll;
      List.iter
        (fun r ->
          Engine.spawn engine ~name:(Printf.sprintf "coll-so-%d" r)
            (fun () ->
              try
                Coll.barrier coll ~me:r;
                incr barriers
              with Coll.Collective_failed _ -> incr failed))
        (Vc.ranks vc));
  Engine.run engine;
  let st = Coll.stats coll in
  let spine_ok =
    List.mem gw !overloaded_at_sample
    && List.assoc_opt 3 !spine = Some other_gw
    && List.for_all
         (fun (_, parent) -> not (List.mem parent !overloaded_at_sample))
         !spine
  in
  {
    co_workload = "coll-spine-overload";
    co_ranks = 4;
    co_expected = 4;
    co_completed = !barriers;
    co_failed = !failed;
    co_agree = true;
    co_value_ok = !intact;
    co_covered = st.Coll.last_covered;
    co_rejoined = true;
    co_spine_ok = spine_ok;
    co_repairs = st.Coll.repairs;
    co_packets = st.Coll.packets;
    co_combined = st.Coll.combined;
    co_root_contribs = st.Coll.root_contribs;
    co_dup_suppressed = st.Coll.dup_suppressed;
    co_finish_us = Time.to_us !finish;
  }

(* A hierarchical cluster-of-clusters world: [clusters] leaf channels
   of [per] ranks each, bridged by a backbone channel of the gateway
   ranks (rank [k * per] of each cluster) — the shape the collectives
   tree is supposed to exploit. Faultless worlds skip the sentinel
   plane entirely, which is what makes the 1024-rank scaling row
   affordable. *)
let coll_world ~seed ~clusters ~per ~with_faults =
  let engine = Engine.create () in
  let n = clusters * per in
  let faults =
    if with_faults then Some (Faults.create engine ~seed:(Int64.of_int seed))
    else None
  in
  let nodes =
    Array.init n (fun i ->
        Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i)
  in
  let session = Madeleine.Session.create engine in
  let channel_on name member_ranks =
    let fabric =
      Fabric.create engine ~name ~link:Netparams.fast_ethernet
    in
    (match faults with Some f -> Fabric.set_faults fabric f | None -> ());
    List.iter (fun i -> Fabric.attach fabric nodes.(i)) member_ranks;
    let net = Tcpnet.make_net engine fabric in
    let stacks = Hashtbl.create 16 in
    List.iter
      (fun i -> Hashtbl.add stacks i (Tcpnet.attach net nodes.(i)))
      member_ranks;
    Channel.create session
      (Madeleine.Pmm_tcp.driver (Hashtbl.find stacks))
      ~ranks:member_ranks ()
  in
  let leaf k = List.init per (fun i -> (k * per) + i) in
  let backbone = List.init clusters (fun k -> k * per) in
  let chans =
    List.init clusters (fun k ->
        channel_on (Printf.sprintf "leaf%d" k) (leaf k))
    @ [ channel_on "backbone" backbone ]
  in
  let vc = Vc.create session ~mtu:4096 ?faults chans in
  (engine, faults, vc)

(* Rolling restarts during one allreduce: a leaf rank and then a whole
   gateway (cutting its cluster off) crash and come back while the
   collective is held open. Every rank's call must return the same
   bytes, and the decided value must equal the sum over exactly the
   covered set — the no-double-count property under repair. *)
let coll_rolling_allreduce_run ~seed ~clusters ~per =
  let engine, faults, vc = coll_world ~seed ~clusters ~per ~with_faults:true in
  let faults = match faults with Some f -> f | None -> assert false in
  let coll = Coll.create ~fanout:4 vc in
  let n = clusters * per in
  let completed = ref 0 and failed = ref 0 in
  let results = Hashtbl.create n in
  let finish = ref Time.zero in
  List.iter
    (fun r ->
      Engine.spawn engine ~name:(Printf.sprintf "coll-ra-%d" r) (fun () ->
          (* Rank 1 holds the collective open until after the rolls, so
             both crashes land mid-allreduce. *)
          Engine.sleep (Time.ms (if r = 1 then 6.0 else 1.0));
          (try
             let v = Coll.allreduce coll ~me:r ~op:coll_sum (coll_contrib r) in
             Hashtbl.replace results r v;
             incr completed
           with Coll.Collective_failed _ -> incr failed);
          finish := Engine.now engine))
    (Vc.ranks vc);
  Engine.spawn engine ~name:"coll-ra-roller" (fun () ->
      Engine.sleep (Time.ms 2.0);
      Faults.crash_now faults ~node:(per + 1) ~restart_after:(Time.ms 3.0) ();
      Engine.sleep (Time.ms 1.0);
      (* The second roll takes out a gateway: its whole cluster drops
         off the tree until the restart, then re-joins through the
         decision journal. *)
      Faults.crash_now faults ~node:(2 * per) ~restart_after:(Time.ms 4.0) ());
  Engine.run engine;
  let st = Coll.stats coll in
  let agree, value_ok = coll_agree_and_value results st.Coll.last_covered in
  {
    co_workload = "coll-rolling-allreduce";
    co_ranks = n;
    co_expected = n;
    co_completed = !completed;
    co_failed = !failed;
    co_agree = agree;
    co_value_ok = value_ok;
    co_covered = st.Coll.last_covered;
    co_rejoined = st.Coll.journal_answers >= 1;
    co_spine_ok = true;
    co_repairs = st.Coll.repairs;
    co_packets = st.Coll.packets;
    co_combined = st.Coll.combined;
    co_root_contribs = st.Coll.root_contribs;
    co_dup_suppressed = st.Coll.dup_suppressed;
    co_finish_us = Time.to_us !finish;
  }

type coll_scale_row = {
  sr_ranks : int;
  sr_depth : int;
  sr_rounds : int;
  sr_tree_us : float;
  sr_tree_root_contribs : int;
  sr_tree_packets : int;
  sr_flat_us : float;
  sr_flat_root_contribs : int;
  sr_flat_packets : int;
}

type coll_scale = {
  cs_fanout : int;
  cs_rows : coll_scale_row list;
  cs_ratio : float; (* flat / tree barrier latency at the largest size *)
  cs_log_like : bool; (* tree depth <= 2 * ceil(log2 n) at every size *)
}

let coll_barrier_once ~seed ~clusters ~per ~algo ~fanout =
  let engine, _faults, vc = coll_world ~seed ~clusters ~per ~with_faults:false in
  (* The world is faultless, so the repair patience is pure slack — but
     it must exceed the barrier itself or the participants declare a
     stall and abandon their partial aggregates mid-cascade. The flat
     baseline at 1024 ranks serializes every contribution through the
     backbone, so give it room. *)
  let coll = Coll.create ~algo ~fanout ~patience:(Time.ms 2000.0) vc in
  let finish = ref Time.zero in
  List.iter
    (fun r ->
      Engine.spawn engine ~name:(Printf.sprintf "coll-sc-%d" r) (fun () ->
          Engine.sleep (Time.ms 1.0);
          Coll.barrier coll ~me:r;
          finish := Engine.now engine))
    (Vc.ranks vc);
  Engine.run engine;
  (Time.to_us !finish -. 1000.0, Coll.stats coll)

(* The headline figure: one barrier over the hierarchical world, tree
   vs flat, at every requested scale. Latency is simulated time, so
   the rows are byte-identical for a given seed. *)
let coll_scale_run ~seed ~fanout ~sizes =
  let rows =
    List.map
      (fun (clusters, per) ->
        let n = clusters * per in
        let tree_us, tree_st =
          coll_barrier_once ~seed ~clusters ~per ~algo:Coll.Tree ~fanout
        in
        let flat_us, flat_st =
          coll_barrier_once ~seed ~clusters ~per ~algo:Coll.Flat ~fanout
        in
        {
          sr_ranks = n;
          sr_depth = tree_st.Coll.last_depth;
          sr_rounds = tree_st.Coll.last_rounds;
          sr_tree_us = tree_us;
          sr_tree_root_contribs = tree_st.Coll.root_contribs;
          sr_tree_packets = tree_st.Coll.packets;
          sr_flat_us = flat_us;
          sr_flat_root_contribs = flat_st.Coll.root_contribs;
          sr_flat_packets = flat_st.Coll.packets;
        })
      sizes
  in
  let log2_ceil n =
    let rec go k acc = if acc >= n then k else go (k + 1) (2 * acc) in
    go 0 1
  in
  let largest = List.nth rows (List.length rows - 1) in
  {
    cs_fanout = fanout;
    cs_rows = rows;
    cs_ratio = largest.sr_flat_us /. largest.sr_tree_us;
    cs_log_like =
      List.for_all
        (fun r -> r.sr_depth <= 2 * log2_ceil r.sr_ranks)
        rows;
  }

(* ------------------------------------------------------------------ *)
(* The workload set. Stop-and-wait retransmission gives up after 12
   attempts, so the per-frame survival probability bounds which
   (rate, size) points can complete: at 5% per link a frame of a dozen
   or more MTU fragments (crossing two faulty endpoints) dies often
   enough that twelve consecutive losses become likely, so the heaviest
   rate is swept only over single-digit-fragment messages rather than
   reported dead. *)

type outcome =
  | Row of row
  | Failed_over of failover
  | Goodput_of of goodput
  | Restarted of crash_restart
  | Overloaded_of of overload
  | Slow_gateway_of of slow_gateway
  | Sched_of of sched_chaos
  | Rolled of rolling_restart
  | Elastic_of of elastic

let run (runner : Sweeps.runner) ~seed ~quick =
  let rates = if quick then [ 0.0; 0.01 ] else [ 0.0; 0.005; 0.01; 0.05 ] in
  let sizes =
    if quick then [ 4; 4096; 16384 ] else [ 4; 256; 4096; 16384; 65536 ]
  in
  let drop_jobs =
    List.concat_map
      (fun drop ->
        List.filter_map
          (fun size ->
            if drop >= 0.05 && size > 4096 then None
            else
              Some
                ( Printf.sprintf "chaos/drop-%.1f%%/%d" (drop *. 100.0) size,
                  fun () -> Row (drop_row ~seed ~drop ~size) ))
          sizes)
      rates
  in
  let corrupt_sizes = if quick then [ 16384 ] else [ 4096; 16384 ] in
  let corrupt_jobs =
    List.map
      (fun size ->
        ( Printf.sprintf "chaos/corrupt-2.0%%/%d" size,
          fun () -> Row (corrupt_row ~seed ~rate:0.02 ~size) ))
      corrupt_sizes
  in
  let scheduled_jobs =
    [
      ("chaos/flap", fun () -> Row (flap_row ~seed ~size:16384));
      ("chaos/reorder", fun () -> Row (reorder_row ~seed ~size:16384));
      ("chaos/pci-stall", fun () -> Row (stall_row ~seed ~size:65536));
      ( "chaos/gateway-failover",
        fun () -> Failed_over (failover_run ~seed ~size:16384 ~messages:4) );
      ( "chaos/goodput",
        fun () ->
          Goodput_of
            (goodput_run ~seed ~size:1024
               ~messages:(if quick then 256 else 512)
               ~window:8 ~drop:0.01) );
      ( "chaos/crash-restart",
        fun () ->
          Restarted
            (crash_restart_run ~seed ~size:16384
               ~messages:(if quick then 3 else 4)) );
      ( "chaos/overload",
        fun () ->
          Overloaded_of
            (overload_run ~seed ~size:16384
               ~messages:(if quick then 4 else 6)
               ~credits:8 ~mtu:4096 ~rx_cap_mb_s:0.11) );
      ( "chaos/slow-gateway",
        fun () ->
          Slow_gateway_of
            (slow_gateway_run ~seed ~size:16384
               ~messages:(if quick then 6 else 8)
               ~credits:32 ~gw_pool:2 ~rx_cap_mb_s:0.5) );
      ( "chaos/sched-aggreg",
        fun () ->
          Sched_of
            (sched_aggreg_run ~seed
               ~flows:(if quick then 16 else 32)
               ~messages:4 ~size:256 ~drop:0.01) );
      ( "chaos/rolling-restart",
        fun () ->
          Rolled
            (rolling_restart_run ~seed ~size:16384
               ~messages:(if quick then 3 else 4)) );
      ( "chaos/join-under-load",
        fun () ->
          Elastic_of
            (join_load_run ~seed ~size:16384
               ~messages:(if quick then 4 else 6)) );
      ( "chaos/drain-under-load",
        fun () ->
          Elastic_of
            (drain_load_run ~seed ~size:16384
               ~messages:(if quick then 4 else 6)) );
    ]
  in
  let outcomes = runner.Sweeps.run (drop_jobs @ corrupt_jobs @ scheduled_jobs) in
  let rows =
    List.filter_map (function Row r -> Some r | _ -> None) outcomes
  in
  let pick what f =
    match List.find_map f outcomes with
    | Some v -> v
    | None -> failwith ("chaos: missing " ^ what)
  in
  {
    rep_seed = seed;
    rep_quick = quick;
    rep_rows = rows;
    rep_failover = pick "failover" (function Failed_over f -> Some f | _ -> None);
    rep_goodput = pick "goodput" (function Goodput_of g -> Some g | _ -> None);
    rep_crash = pick "crash-restart" (function Restarted c -> Some c | _ -> None);
    rep_overload =
      pick "overload" (function Overloaded_of o -> Some o | _ -> None);
    rep_slow_gateway =
      pick "slow-gateway" (function Slow_gateway_of s -> Some s | _ -> None);
    rep_sched = pick "sched-aggreg" (function Sched_of s -> Some s | _ -> None);
    rep_rolling =
      pick "rolling-restart" (function Rolled r -> Some r | _ -> None);
    rep_join =
      pick "join-under-load" (function
        | Elastic_of e when e.el_op = "join" -> Some e
        | _ -> None);
    rep_drain =
      pick "drain-under-load" (function
        | Elastic_of e when e.el_op = "drain" -> Some e
        | _ -> None);
  }

(* Named pass/fail gates; CI relies on the process exit code derived
   from these, and a failure prints the gate names that tripped. The
   live-topology gates stand alone so `madbench chaos WORKLOAD` can
   judge a single scenario. *)
let rolling_gates rr =
  [
    ("rolling-restart-exactly-once", rr.rr_exactly_once);
    ( "rolling-restart-no-dup-deliveries",
      rr.rr_dup_deliveries = 0 && rr.rr_delivered = 2 * rr.rr_messages );
    ("rolling-restart-no-partition", not rr.rr_partitioned);
    ("rolling-restart-queues-bounded", rr.rr_bounded);
    ( "rolling-restart-epochs-advanced",
      rr.rr_joins >= 3 && rr.rr_drains >= 3
      && rr.rr_epoch_final >= rr.rr_epoch_start + 6 );
  ]

let elastic_gates e =
  if e.el_op = "join" then
    [
      ( "join-under-load-no-partition",
        (not e.el_partitioned) && e.el_intact );
      ( "join-under-load-routable",
        e.el_routable && e.el_status = "up" && e.el_watched );
    ]
  else
    [
      ( "drain-under-load-no-partition",
        (not e.el_partitioned) && e.el_intact );
      ( "drain-under-load-forgotten",
        e.el_routable && e.el_status = "departed" && not e.el_watched );
    ]

let coll_gates c =
  let tag s = c.co_workload ^ "-" ^ s in
  [
    ( tag "completed",
      c.co_completed = c.co_expected && c.co_failed = 0 );
    (tag "agree", c.co_agree);
    ( tag "exactly-once",
      c.co_value_ok && c.co_dup_suppressed >= 0 );
  ]
  @ (if c.co_workload = "coll-spine-overload" then
       [ (tag "spine-avoids-overloaded", c.co_spine_ok) ]
     else
       [
         (tag "rejoined-from-journal", c.co_rejoined);
         (tag "repaired", c.co_repairs >= 1);
       ])

let coll_scale_gates cs =
  [
    ("coll-scale-tree-log-rounds", cs.cs_log_like);
    ("coll-scale-speedup", cs.cs_ratio >= 4.0);
    ( "coll-scale-combining",
      List.for_all
        (fun r -> r.sr_tree_root_contribs < r.sr_flat_root_contribs)
        cs.cs_rows );
  ]

let gates r =
  let ov = r.rep_overload and sg = r.rep_slow_gateway in
  [
    ("rows-intact", List.for_all (fun row -> row.intact) r.rep_rows);
    ("failover-intact", r.rep_failover.fo_intact);
    ("failover-partition-detected", r.rep_failover.fo_partitioned);
    ("failover-rerouted", r.rep_failover.fo_reroutes >= 1);
    ("goodput-intact", r.rep_goodput.gp_intact);
    ("goodput-window-speedup", r.rep_goodput.gp_speedup >= 2.0);
    ("crash-restart-exactly-once", r.rep_crash.cr_exactly_once);
    ("crash-restart-handshake", r.rep_crash.cr_handshakes >= 1);
    ("overload-intact", ov.ov_intact);
    ("overload-queues-bounded", ov.ov_bounded);
    ("overload-sender-stalled", ov.ov_stalls > 0 && ov.ov_grants > 0);
    ( "overload-rate-mismatch",
      ov.ov_throttled_mb_s > 0.0
      && ov.ov_clean_mb_s /. ov.ov_throttled_mb_s >= 10.0 );
    ("slow-gateway-intact", sg.sg_intact);
    ("slow-gateway-queues-bounded", sg.sg_bounded);
    ( "slow-gateway-overload-reported",
      sg.sg_overload_events >= 1 && sg.sg_overload_reported );
    ("slow-gateway-overload-cleared", sg.sg_overload_cleared);
    ( "slow-gateway-ingress-throttled",
      sg.sg_ingress_mb_s <= 2.0 *. sg.sg_rx_cap_mb_s
      && sg.sg_ingress_mb_s >= 0.2 *. sg.sg_rx_cap_mb_s );
    ("sched-aggreg-intact", r.rep_sched.sc_intact);
    ("sched-aggreg-merged", r.rep_sched.sc_merged > 0);
  ]
  @ rolling_gates r.rep_rolling
  @ elastic_gates r.rep_join
  @ elastic_gates r.rep_drain

let failing_gates r =
  List.filter_map (fun (name, ok) -> if ok then None else Some name) (gates r)

let all_ok r = List.for_all snd (gates r)

(* ------------------------------------------------------------------ *)
(* Rendering. Every figure below is simulated, so the whole report is a
   pure function of (seed, quick): reruns are byte-identical. *)

let queues_json b queues =
  Buffer.add_string b "[\n";
  let last = List.length queues - 1 in
  List.iteri
    (fun i q ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"point\": %S, \"node\": %d, \"peer\": %d, \"peak\": %d, \
            \"bound\": %s }%s\n"
           q.Vc.q_point q.Vc.q_node q.Vc.q_peer q.Vc.q_peak
           (match q.Vc.q_bound with
           | Some v -> string_of_int v
           | None -> "null")
           (if i = last then "" else ",")))
    queues;
  Buffer.add_string b "  ]"

let to_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{ \"chaos\": { \"seed\": %d, \"quick\": %b, \"rows\": [\n"
       r.rep_seed r.rep_quick);
  let last = List.length r.rep_rows - 1 in
  List.iteri
    (fun i row ->
      Buffer.add_string b
        (Printf.sprintf
           "  { \"scenario\": %S, \"size\": %d, \"drop_pct\": %.2f, \
            \"lat_us\": %.2f, \"bw_mb_s\": %.2f, \"drops\": %d, \
            \"corrupts\": %d, \"dups\": %d, \"delays\": %d, \
            \"retransmissions\": %d, \"crc_rejects\": %d, \
            \"intact\": %b }%s\n"
           row.scenario row.size row.drop_pct row.lat_us row.bw_mb_s row.drops
           row.corrupts row.dups row.delays row.retransmissions
           row.crc_rejects row.intact
           (if i = last then "" else ",")))
    r.rep_rows;
  let f = r.rep_failover in
  Buffer.add_string b
    (Printf.sprintf
       "], \"failover\": { \"messages\": %d, \"size\": %d, \
        \"crashed_gateway\": %d, \"route_after\": [%s], \"reroutes\": %d, \
        \"reemitted\": %d, \"dup_drops\": %d, \"intact\": %b, \
        \"partitioned_after_second_crash\": %b, \"finish_us\": %.2f },\n"
       f.fo_messages f.fo_size f.fo_crashed_gateway
       (String.concat ", " (List.map string_of_int f.fo_route_after))
       f.fo_reroutes f.fo_reemitted f.fo_dup_drops f.fo_intact f.fo_partitioned
       f.fo_finish_us);
  let g = r.rep_goodput in
  Buffer.add_string b
    (Printf.sprintf
       "\"goodput\": { \"size\": %d, \"messages\": %d, \"drop_pct\": %.2f, \
        \"window\": %d, \"window_mb_s\": %.2f, \"stopwait_mb_s\": %.2f, \
        \"speedup\": %.2f, \"intact\": %b },\n"
       g.gp_size g.gp_messages g.gp_drop_pct g.gp_window g.gp_window_mb_s
       g.gp_stopwait_mb_s g.gp_speedup g.gp_intact);
  let c = r.rep_crash in
  Buffer.add_string b
    (Printf.sprintf
       "\"crash_restart\": { \"messages_per_phase\": %d, \"size\": %d, \
        \"gateway\": %d, \"restart_us\": %.2f, \"delivered\": %d, \
        \"handshakes\": %d, \"reroutes\": %d, \"reemitted\": %d, \
        \"dup_drops\": %d, \"exactly_once\": %b, \"finish_us\": %.2f,\n"
       c.cr_messages c.cr_size c.cr_gateway c.cr_restart_us c.cr_delivered
       c.cr_handshakes c.cr_reroutes c.cr_reemitted c.cr_dup_drops
       c.cr_exactly_once c.cr_finish_us);
  Buffer.add_string b "  \"suspicions\": [\n";
  let last_s = List.length c.cr_suspicions - 1 in
  List.iteri
    (fun i (at_us, observer, peer, from_, to_, phi) ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"at_us\": %.2f, \"observer\": %d, \"peer\": %d, \
            \"from\": %S, \"to\": %S, \"phi\": %.3f }%s\n"
           at_us observer peer from_ to_ phi
           (if i = last_s then "" else ",")))
    c.cr_suspicions;
  Buffer.add_string b "  ],\n  \"flows\": [\n";
  let last_f = List.length c.cr_flows - 1 in
  List.iteri
    (fun i fs ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"src\": %d, \"dst\": %d, \"sent\": %d, \"unacked\": %d, \
            \"delivered\": %d }%s\n"
           fs.Vc.flow_src fs.Vc.flow_dst fs.Vc.sent fs.Vc.unacked
           fs.Vc.delivered
           (if i = last_f then "" else ",")))
    c.cr_flows;
  Buffer.add_string b "  ] },\n";
  let o = r.rep_overload in
  Buffer.add_string b
    (Printf.sprintf
       "\"overload\": { \"messages\": %d, \"size\": %d, \"credits\": %d, \
        \"mtu\": %d, \"rx_cap_mb_s\": %.3f, \"clean_mb_s\": %.2f, \
        \"throttled_mb_s\": %.3f, \"stalls\": %d, \"grants\": %d, \
        \"probes\": %d, \"inbox_peak_bytes\": %d, \"sendq_peak_frames\": %d, \
        \"intact\": %b, \"bounded\": %b, \"finish_us\": %.2f,\n  \"queues\": "
       o.ov_messages o.ov_size o.ov_credits o.ov_mtu o.ov_rx_cap_mb_s
       o.ov_clean_mb_s o.ov_throttled_mb_s o.ov_stalls o.ov_grants o.ov_probes
       o.ov_inbox_peak_bytes o.ov_sendq_peak_frames o.ov_intact o.ov_bounded
       o.ov_finish_us);
  queues_json b o.ov_queues;
  Buffer.add_string b " },\n";
  let s = r.rep_slow_gateway in
  Buffer.add_string b
    (Printf.sprintf
       "\"slow_gateway\": { \"messages\": %d, \"size\": %d, \"credits\": %d, \
        \"gw_pool\": %d, \"rx_cap_mb_s\": %.3f, \"ingress_mb_s\": %.3f, \
        \"overload_events\": %d, \"overload_reported\": %b, \
        \"overload_cleared\": %b, \"intact\": %b, \"bounded\": %b, \
        \"finish_us\": %.2f,\n  \"queues\": "
       s.sg_messages s.sg_size s.sg_credits s.sg_gw_pool s.sg_rx_cap_mb_s
       s.sg_ingress_mb_s s.sg_overload_events s.sg_overload_reported
       s.sg_overload_cleared s.sg_intact s.sg_bounded s.sg_finish_us);
  queues_json b s.sg_queues;
  Buffer.add_string b " },\n";
  let sc = r.rep_sched in
  Buffer.add_string b
    (Printf.sprintf
       "\"sched_aggreg\": { \"flows\": %d, \"messages_per_flow\": %d, \
        \"size\": %d, \"drop_pct\": %.2f, \"merged\": %d, \
        \"aggregates\": %d, \"mean_frames\": %.2f, \"flush_full\": %d, \
        \"flush_deadline\": %d, \"flush_flow\": %d, \"reemitted\": %d, \
        \"dup_drops\": %d, \"intact\": %b, \"finish_us\": %.2f },\n"
       sc.sc_flows sc.sc_messages sc.sc_size sc.sc_drop_pct sc.sc_merged
       sc.sc_aggregates sc.sc_mean_frames sc.sc_flush_full
       sc.sc_flush_deadline sc.sc_flush_flow sc.sc_reemitted sc.sc_dup_drops
       sc.sc_intact sc.sc_finish_us);
  let rr = r.rep_rolling in
  Buffer.add_string b
    (Printf.sprintf
       "\"rolling_restart\": { \"messages_per_phase\": %d, \"size\": %d, \
        \"restarted\": [%s], \"epoch_start\": %d, \"epoch_final\": %d, \
        \"joins\": %d, \"drains\": %d, \"delivered\": %d, \
        \"dup_deliveries\": %d, \"reroutes\": %d, \"reemitted\": %d, \
        \"dup_drops\": %d, \"handshakes\": %d, \"partitioned\": %b, \
        \"exactly_once\": %b, \"bounded\": %b, \"finish_us\": %.2f,\n\
       \  \"queues\": "
       rr.rr_messages rr.rr_size
       (String.concat ", " (List.map string_of_int rr.rr_restarted))
       rr.rr_epoch_start rr.rr_epoch_final rr.rr_joins rr.rr_drains
       rr.rr_delivered rr.rr_dup_deliveries rr.rr_reroutes rr.rr_reemitted
       rr.rr_dup_drops rr.rr_handshakes rr.rr_partitioned rr.rr_exactly_once
       rr.rr_bounded rr.rr_finish_us);
  queues_json b rr.rr_queues;
  Buffer.add_string b " },\n";
  let elastic_json e =
    Printf.sprintf
      "{ \"op\": %S, \"messages\": %d, \"size\": %d, \"rank\": %d, \
       \"epoch_final\": %d, \"routable\": %b, \"status\": %S, \
       \"watched\": %b, \"partitioned\": %b, \"intact\": %b, \
       \"finish_us\": %.2f }"
      e.el_op e.el_messages e.el_size e.el_rank e.el_epoch_final e.el_routable
      e.el_status e.el_watched e.el_partitioned e.el_intact e.el_finish_us
  in
  Buffer.add_string b
    (Printf.sprintf "\"join_under_load\": %s,\n\"drain_under_load\": %s,\n"
       (elastic_json r.rep_join)
       (elastic_json r.rep_drain));
  Buffer.add_string b "\"gates\": [\n";
  let gs = gates r in
  let last_g = List.length gs - 1 in
  List.iteri
    (fun i (name, ok) ->
      Buffer.add_string b
        (Printf.sprintf "  { \"gate\": %S, \"pass\": %b }%s\n" name ok
           (if i = last_g then "" else ",")))
    gs;
  Buffer.add_string b "] } }\n";
  Buffer.contents b

let rolling_line rr =
  Printf.sprintf
    "rolling-restart: 2 x %d x %d B while every rank restarts \
     (order [%s]); epoch %d -> %d (%d join(s), %d drain(s)), \
     %d delivered (%d dup), %d reroute(s), %d re-emitted, \
     %d handshake(s), partitioned=%s, exactly-once=%s, bounded=%s, \
     finish=%.2f us\n"
    rr.rr_messages rr.rr_size
    (String.concat "; " (List.map string_of_int rr.rr_restarted))
    rr.rr_epoch_start rr.rr_epoch_final rr.rr_joins rr.rr_drains
    rr.rr_delivered rr.rr_dup_deliveries rr.rr_reroutes rr.rr_reemitted
    rr.rr_handshakes
    (if rr.rr_partitioned then "YES" else "no")
    (if rr.rr_exactly_once then "yes" else "NO")
    (if rr.rr_bounded then "yes" else "NO")
    rr.rr_finish_us

let elastic_line e =
  Printf.sprintf
    "%s-under-load: %d x %d B; rank %d %sed mid-sweep -> epoch %d, \
     routable-as-expected=%s, status=%s, watched=%s, partitioned=%s, \
     intact=%s, finish=%.2f us\n"
    e.el_op e.el_messages e.el_size e.el_rank e.el_op e.el_epoch_final
    (if e.el_routable then "yes" else "NO")
    e.el_status
    (if e.el_watched then "yes" else "no")
    (if e.el_partitioned then "YES" else "no")
    (if e.el_intact then "yes" else "NO")
    e.el_finish_us

let coll_line c =
  Printf.sprintf
    "%s: %d rank(s), %d/%d call(s) completed (%d failed typed); \
     agree=%s, value-correct=%s, covered=[%s], repairs=%d, \
     combined=%d, root-contribs=%d, dup-suppressed=%d, \
     journal-answers=%s, spine-ok=%s, packets=%d, finish=%.2f us\n"
    c.co_workload c.co_ranks c.co_completed c.co_expected c.co_failed
    (if c.co_agree then "yes" else "NO")
    (if c.co_value_ok then "yes" else "NO")
    (String.concat "; " (List.map string_of_int c.co_covered))
    c.co_repairs c.co_combined c.co_root_contribs c.co_dup_suppressed
    (if c.co_rejoined then "yes" else "no")
    (if c.co_spine_ok then "yes" else "NO")
    c.co_packets c.co_finish_us

let coll_scale_line cs =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "coll-scale (fanout %d): barrier tree-vs-flat, ratio %.2fx at \
        largest size, log-like=%s\n"
       cs.cs_fanout cs.cs_ratio
       (if cs.cs_log_like then "yes" else "NO"));
  Buffer.add_string b
    (Printf.sprintf "  %6s %6s %7s %12s %12s %8s %11s %11s\n" "ranks" "depth"
       "rounds" "tree(us)" "flat(us)" "ratio" "tree-root" "flat-root");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "  %6d %6d %7d %12.2f %12.2f %7.2fx %11d %11d\n"
           r.sr_ranks r.sr_depth r.sr_rounds r.sr_tree_us r.sr_flat_us
           (r.sr_flat_us /. r.sr_tree_us) r.sr_tree_root_contribs
           r.sr_flat_root_contribs))
    cs.cs_rows;
  Buffer.contents b

let render_table r =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "# chaos report (seed %d%s)\n" r.rep_seed
       (if r.rep_quick then ", quick" else ""));
  Buffer.add_string b
    (Printf.sprintf "%-10s %8s %7s %12s %10s %6s %8s %5s %5s %8s %5s %7s\n"
       "scenario" "size(B)" "drop%" "latency(us)" "bw(MB/s)" "drops" "corrupts"
       "dups" "late" "retrans" "crc" "intact");
  (* Degradation is judged against the clean (0%) row of the same size. *)
  let clean_lat size =
    List.find_map
      (fun row ->
        if row.scenario = "drop" && row.drop_pct = 0.0 && row.size = size then
          Some row.lat_us
        else None)
      r.rep_rows
  in
  List.iter
    (fun row ->
      Buffer.add_string b
        (Printf.sprintf
           "%-10s %8d %7.1f %12.2f %10.2f %6d %8d %5d %5d %8d %5d %7s%s\n"
           row.scenario row.size row.drop_pct row.lat_us row.bw_mb_s row.drops
           row.corrupts row.dups row.delays row.retransmissions row.crc_rejects
           (if row.intact then "yes" else "NO")
           (match clean_lat row.size with
           | Some base when row.drop_pct > 0.0 && base > 0.0 ->
               Printf.sprintf "  (%.2fx clean latency)" (row.lat_us /. base)
           | _ -> "")))
    r.rep_rows;
  let f = r.rep_failover in
  Buffer.add_string b
    (Printf.sprintf
       "failover: %d x %d B via gateway %d; crash mid-stream -> route [%s], \
        %d reroute(s), %d re-emitted, %d dup(s) dropped, intact=%s, \
        partitioned after second crash=%s, finish=%.2f us\n"
       f.fo_messages f.fo_size f.fo_crashed_gateway
       (String.concat "; " (List.map string_of_int f.fo_route_after))
       f.fo_reroutes f.fo_reemitted f.fo_dup_drops
       (if f.fo_intact then "yes" else "NO")
       (if f.fo_partitioned then "yes" else "NO")
       f.fo_finish_us);
  let g = r.rep_goodput in
  Buffer.add_string b
    (Printf.sprintf
       "goodput:  %d x %d B at %.1f%% drop: window=%d %.2f MB/s vs \
        stop-and-wait %.2f MB/s -> %.2fx, intact=%s\n"
       g.gp_messages g.gp_size g.gp_drop_pct g.gp_window g.gp_window_mb_s
       g.gp_stopwait_mb_s g.gp_speedup
       (if g.gp_intact then "yes" else "NO"))
  ;
  let c = r.rep_crash in
  Buffer.add_string b
    (Printf.sprintf
       "crash-restart: 2 x %d x %d B through gateway %d; gateway and \
        origin each die and restart (%.0f us) mid-stream -> %d delivered, \
        %d handshake(s), %d reroute(s), %d re-emitted, %d dup(s) dropped, \
        %d suspicion event(s), exactly-once=%s, finish=%.2f us\n"
       c.cr_messages c.cr_size c.cr_gateway c.cr_restart_us c.cr_delivered
       c.cr_handshakes c.cr_reroutes c.cr_reemitted c.cr_dup_drops
       (List.length c.cr_suspicions)
       (if c.cr_exactly_once then "yes" else "NO")
       c.cr_finish_us);
  let o = r.rep_overload in
  Buffer.add_string b
    (Printf.sprintf
       "overload: %d x %d B, credits=%d, receiver capped at %.2f MB/s \
        (clean %.2f MB/s -> %.1f:1 mismatch): delivered %.3f MB/s, \
        %d stall(s), %d grant(s), %d probe(s), queues bounded=%s, intact=%s\n"
       o.ov_messages o.ov_size o.ov_credits o.ov_rx_cap_mb_s o.ov_clean_mb_s
       (if o.ov_throttled_mb_s > 0.0 then
          o.ov_clean_mb_s /. o.ov_throttled_mb_s
        else 0.0)
       o.ov_throttled_mb_s o.ov_stalls o.ov_grants o.ov_probes
       (if o.ov_bounded then "yes" else "NO")
       (if o.ov_intact then "yes" else "NO"));
  List.iter
    (fun q ->
      Buffer.add_string b
        (Printf.sprintf "  queue %-18s node=%d peer=%d peak=%d bound=%s\n"
           q.Vc.q_point q.Vc.q_node q.Vc.q_peer q.Vc.q_peak
           (match q.Vc.q_bound with
           | Some v -> string_of_int v
           | None -> "-")))
    o.ov_queues;
  let s = r.rep_slow_gateway in
  Buffer.add_string b
    (Printf.sprintf
       "slow-gateway: %d x %d B via a pool of %d, egress capped at \
        %.2f MB/s: ingress throttled to %.3f MB/s, %d overload event(s) \
        (reported=%s, cleared=%s), queues bounded=%s, intact=%s\n"
       s.sg_messages s.sg_size s.sg_gw_pool s.sg_rx_cap_mb_s s.sg_ingress_mb_s
       s.sg_overload_events
       (if s.sg_overload_reported then "yes" else "NO")
       (if s.sg_overload_cleared then "yes" else "NO")
       (if s.sg_bounded then "yes" else "NO")
       (if s.sg_intact then "yes" else "NO"));
  let sc = r.rep_sched in
  Buffer.add_string b
    (Printf.sprintf
       "sched-aggreg: %d flows x %d x %d B at %.1f%% drop: %d frame(s) \
        merged into %d aggregate(s) (%.1f frames each; full=%d \
        deadline=%d flow=%d), %d re-emitted, %d dup(s) dropped, \
        intact=%s, finish=%.2f us\n"
       sc.sc_flows sc.sc_messages sc.sc_size sc.sc_drop_pct sc.sc_merged
       sc.sc_aggregates sc.sc_mean_frames sc.sc_flush_full
       sc.sc_flush_deadline sc.sc_flush_flow sc.sc_reemitted sc.sc_dup_drops
       (if sc.sc_intact then "yes" else "NO")
       sc.sc_finish_us);
  Buffer.add_string b (rolling_line r.rep_rolling);
  Buffer.add_string b (elastic_line r.rep_join);
  Buffer.add_string b (elastic_line r.rep_drain);
  (match failing_gates r with
  | [] -> Buffer.add_string b "gates: all passed\n"
  | failed ->
      Buffer.add_string b
        (Printf.sprintf "gates FAILED: %s\n" (String.concat ", " failed)));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* The clean-path control: the quick chaos workload with no fault plane
   attached at all. Simspeed tracks its host events/s to catch the
   fault machinery taxing the fault-free fast path. *)

let clean_path_events () =
  (* Enough iterations that the host-side wall clock of the scenario is
     tens of milliseconds: a 20%-tolerance gate on a millisecond-sized
     sample would be all noise. *)
  List.fold_left
    (fun acc size ->
      let w = Harness.tcp_world () in
      ignore (Harness.mad_pingpong w ~bytes_count:size ~iters:256);
      acc + Engine.events_processed w.Harness.engine)
    0 [ 4; 4096; 16384 ]

(* The windowed-protocol control: the reliable TCP stream with a fault
   plane attached but inert (no fault configured). Simspeed tracks its
   host events/s — once with the go-back-N window and once degraded to
   stop-and-wait — to catch the window/session machinery taxing the
   fault-free fast path. *)
let inert_window_events ~window =
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~name:"eth" ~link:Netparams.fast_ethernet in
  let faults = Faults.create engine ~seed:42L in
  Fabric.set_faults fabric faults;
  let nodes =
    Array.init 2 (fun i ->
        let n = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Fabric.attach fabric n;
        n)
  in
  let net = Tcpnet.make_net ~window engine fabric in
  let s0 = Tcpnet.attach net nodes.(0) and s1 = Tcpnet.attach net nodes.(1) in
  let c0, c1 = Tcpnet.socketpair s0 s1 in
  (* Enough messages that the wall clock is tens of milliseconds — the
     20%-tolerance gate would be pure scheduler noise on a smaller
     sample. *)
  let size = 4096 and messages = 1024 in
  let data = Harness.payload size 23L in
  Engine.spawn engine ~name:"iw-send" (fun () ->
      for _ = 1 to messages do
        Tcpnet.send c0 data
      done);
  Engine.spawn engine ~name:"iw-recv" (fun () ->
      let buf = Bytes.create size in
      for _ = 1 to messages do
        Tcpnet.recv c1 buf ~off:0 ~len:size
      done);
  Engine.run engine;
  Engine.events_processed engine
