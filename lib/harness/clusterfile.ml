module Engine = Marcel.Engine
module Time = Marcel.Time
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams
module Channel = Madeleine.Channel
module Config = Madeleine.Config

exception Parse_error of int * string

type net_kind = Sisci_k | Bip_k | Tcp_k | Via_k | Sbp_k

(* A network: its fabric plus the per-rank protocol endpoint factory,
   built lazily as nodes join. *)
type network = {
  kind : net_kind;
  fabric : Fabric.t;
  mutable attach_node : Node.t -> unit;
  mutable driver_of : unit -> Madeleine.Driver.t;
}

type t = {
  cf_engine : Engine.t;
  cf_session : Madeleine.Session.t;
  mutable cf_faults : Simnet.Faults.t option;
  nets : (string, network) Hashtbl.t;
  node_tbl : (string, Node.t) Hashtbl.t;
  mutable node_order : string list; (* reverse declaration order *)
  chan_tbl : (string, Channel.t) Hashtbl.t;
  mutable chan_order : string list;
  vchan_tbl : (string, Madeleine.Vchannel.t) Hashtbl.t;
  mutable vchan_order : string list;
  coll_tbl : (string, Madeleine.Collectives.t) Hashtbl.t;
  mutable net_order : string list;
}

let engine t = t.cf_engine
let session t = t.cf_session
let faults t = t.cf_faults
let networks t = List.rev t.net_order
let nodes t = List.rev t.node_order
let channels t = List.rev t.chan_order
let vchannels t = List.rev t.vchan_order
let node t name = Hashtbl.find t.node_tbl name
let rank_of t name = (node t name).Node.id
let channel t name = Hashtbl.find t.chan_tbl name
let vchannel t name = Hashtbl.find t.vchan_tbl name
let collectives t name = Hashtbl.find_opt t.coll_tbl name

(* ------------------------------------------------------------------ *)
(* Per-kind glue: how to attach a node and build a driver. *)

let make_network engine ?window ?max_retries ?credits kind name =
  let link =
    match kind with
    | Sisci_k -> Netparams.sci
    | Bip_k -> Netparams.myrinet
    | Tcp_k | Via_k | Sbp_k -> Netparams.fast_ethernet
  in
  let fabric = Fabric.create engine ~name ~link in
  match kind with
  | Sisci_k ->
      let net = Sisci.make_net engine fabric in
      let eps = Hashtbl.create 8 in
      {
        kind;
        fabric;
        attach_node =
          (fun n ->
            Fabric.attach fabric n;
            Hashtbl.add eps n.Node.id (Sisci.attach net n));
        driver_of =
          (fun () -> Madeleine.Pmm_sisci.driver (Hashtbl.find eps));
      }
  | Bip_k ->
      let net = Bip.make_net ?credits engine fabric in
      let eps = Hashtbl.create 8 in
      {
        kind;
        fabric;
        attach_node =
          (fun n ->
            Fabric.attach fabric n;
            Hashtbl.add eps n.Node.id (Bip.attach net n));
        driver_of = (fun () -> Madeleine.Pmm_bip.driver (Hashtbl.find eps));
      }
  | Tcp_k ->
      let net = Tcpnet.make_net ?window ?max_retries engine fabric in
      let eps = Hashtbl.create 8 in
      {
        kind;
        fabric;
        attach_node =
          (fun n ->
            Fabric.attach fabric n;
            Hashtbl.add eps n.Node.id (Tcpnet.attach net n));
        driver_of = (fun () -> Madeleine.Pmm_tcp.driver (Hashtbl.find eps));
      }
  | Via_k ->
      let net = Via.make_net engine fabric in
      let eps = Hashtbl.create 8 in
      {
        kind;
        fabric;
        attach_node =
          (fun n ->
            Fabric.attach fabric n;
            Hashtbl.add eps n.Node.id (Via.attach net n));
        driver_of = (fun () -> Madeleine.Pmm_via.driver (Hashtbl.find eps));
      }
  | Sbp_k ->
      let net = Sbp.make_net engine fabric in
      let eps = Hashtbl.create 8 in
      {
        kind;
        fabric;
        attach_node =
          (fun n ->
            Fabric.attach fabric n;
            Hashtbl.add eps n.Node.id (Sbp.attach net n));
        driver_of = (fun () -> Madeleine.Pmm_sbp.driver (Hashtbl.find eps));
      }

(* ------------------------------------------------------------------ *)
(* Parsing *)

let tokenize line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let split_kv lineno tok =
  match String.index_opt tok '=' with
  | None -> raise (Parse_error (lineno, Printf.sprintf "expected key=value, got %S" tok))
  | Some i ->
      (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))

let parse_bool lineno key v =
  match v with
  | "true" -> true
  | "false" -> false
  | _ -> raise (Parse_error (lineno, Printf.sprintf "%s expects true/false, got %S" key v))

let parse_int lineno key v =
  match int_of_string_opt v with
  | Some i -> i
  | None -> raise (Parse_error (lineno, Printf.sprintf "%s expects an integer, got %S" key v))

let parse_float lineno key v =
  match float_of_string_opt v with
  | Some f -> f
  | None -> raise (Parse_error (lineno, Printf.sprintf "%s expects a number, got %S" key v))

let comma v = String.split_on_char ',' v |> List.filter (fun s -> s <> "")

let string_of_kind = function
  | Sisci_k -> "sisci"
  | Bip_k -> "bip"
  | Tcp_k -> "tcp"
  | Via_k -> "via"
  | Sbp_k -> "sbp"

let kind_of_string lineno = function
  | "sisci" -> Sisci_k
  | "bip" -> Bip_k
  | "tcp" -> Tcp_k
  | "via" -> Via_k
  | "sbp" -> Sbp_k
  | other -> raise (Parse_error (lineno, Printf.sprintf "unknown network type %S" other))

let find_or lineno table what name =
  match Hashtbl.find_opt table name with
  | Some v -> v
  | None -> raise (Parse_error (lineno, Printf.sprintf "unknown %s %S" what name))

let declare lineno table what name v =
  if Hashtbl.mem table name then
    raise (Parse_error (lineno, Printf.sprintf "duplicate %s %S" what name));
  Hashtbl.add table name v

let parse_line t lineno line =
  match tokenize line with
  | [] -> ()
  | "network" :: name :: opts ->
      let kind = ref None in
      let window = ref None and max_retries = ref None in
      let credits = ref None in
      List.iter
        (fun tok ->
          match split_kv lineno tok with
          | "type", v -> kind := Some (kind_of_string lineno v)
          | "window", v -> window := Some (parse_int lineno "window" v)
          | "max_retries", v ->
              max_retries := Some (parse_int lineno "max_retries" v)
          | "credits", v ->
              let n = parse_int lineno "credits" v in
              if n < 1 then
                raise (Parse_error (lineno, "credits expects an integer >= 1"));
              credits := Some n
          | "gw_pool", _ ->
              raise
                (Parse_error
                   (lineno,
                    "gw_pool= is a vchannel option (gateway forwarding pool)"))
          | k, _ -> raise (Parse_error (lineno, "unknown network option " ^ k)))
        opts;
      let kind =
        match !kind with
        | Some k -> k
        | None -> raise (Parse_error (lineno, "network needs type="))
      in
      (match kind with
      | Tcp_k -> ()
      | _ ->
          if !window <> None || !max_retries <> None then
            raise
              (Parse_error
                 (lineno, "window=/max_retries= apply to tcp networks only")));
      (match kind with
      | Bip_k -> ()
      | _ ->
          if !credits <> None then
            raise
              (Parse_error
                 (lineno,
                  "credits= applies to bip networks only (use vchannel \
                   credits= for end-to-end flow control)")));
      let net =
        make_network t.cf_engine ?window:!window ?max_retries:!max_retries
          ?credits:!credits kind name
      in
      (* A previously declared fault plane covers every later fabric. *)
      (match t.cf_faults with
      | Some plane -> Fabric.set_faults net.fabric plane
      | None -> ());
      declare lineno t.nets "network" name net;
      t.net_order <- name :: t.net_order
  | "faults" :: opts ->
      if t.cf_faults <> None then
        raise (Parse_error (lineno, "duplicate faults declaration"));
      let seed = ref None in
      List.iter
        (fun tok ->
          match split_kv lineno tok with
          | "seed", v -> seed := Some (parse_int lineno "seed" v)
          | k, _ -> raise (Parse_error (lineno, "unknown faults option " ^ k)))
        opts;
      let seed =
        match !seed with
        | Some s -> s
        | None -> raise (Parse_error (lineno, "faults needs seed="))
      in
      let plane = Simnet.Faults.create t.cf_engine ~seed:(Int64.of_int seed) in
      Hashtbl.iter (fun _ net -> Fabric.set_faults net.fabric plane) t.nets;
      t.cf_faults <- Some plane
  | "fault" :: kind :: opts ->
      let plane =
        match t.cf_faults with
        | Some p -> p
        | None ->
            raise
              (Parse_error
                 (lineno, "fault requires a prior faults seed=N declaration"))
      in
      let net = ref None and who = ref None in
      let rate = ref None and at = ref None in
      let dur = ref None and restart = ref None in
      List.iter
        (fun tok ->
          match split_kv lineno tok with
          | "net", v ->
              ignore (find_or lineno t.nets "network" v);
              net := Some v
          | "node", v -> who := Some (find_or lineno t.node_tbl "node" v)
          | "rate", v -> rate := Some (parse_float lineno "rate" v)
          | "at_us", v -> at := Some (parse_float lineno "at_us" v)
          | "for_us", v -> dur := Some (parse_float lineno "for_us" v)
          | "restart_after_us", v ->
              restart := Some (parse_float lineno "restart_after_us" v)
          | k, _ -> raise (Parse_error (lineno, "unknown fault option " ^ k)))
        opts;
      let need what = function
        | Some v -> v
        | None ->
            raise
              (Parse_error
                 (lineno, Printf.sprintf "fault %s needs %s=" kind what))
      in
      let node () = need "node" !who in
      let rank () = (node ()).Node.id in
      let at_time () = Time.add Time.zero (Time.us (need "at_us" !at)) in
      let duration () = Time.us (need "for_us" !dur) in
      (match kind with
      | "drop" ->
          Simnet.Faults.set_drop plane ~fabric:(need "net" !net)
            ~node:(rank ()) ~rate:(need "rate" !rate)
      | "corrupt" ->
          Simnet.Faults.set_corrupt plane ~fabric:(need "net" !net)
            ~node:(rank ()) ~rate:(need "rate" !rate)
      | "flap" ->
          Simnet.Faults.flap_link plane ~fabric:(need "net" !net)
            ~node:(rank ()) ~at:(at_time ()) ~duration:(duration ())
      | "crash" ->
          Simnet.Faults.crash_node plane ~node:(rank ()) ~at:(at_time ())
            ?restart_after:(Option.map Time.us !restart) ()
      | "stall" ->
          Simnet.Faults.stall_pci plane (node ()) ~at:(at_time ())
            ~duration:(duration ())
      | other ->
          raise
            (Parse_error
               (lineno,
                Printf.sprintf
                  "unknown fault kind %S (drop|corrupt|flap|crash|stall)" other)))
  | "node" :: name :: opts ->
      let nets = ref [] in
      List.iter
        (fun tok ->
          match split_kv lineno tok with
          | "nets", v -> nets := comma v
          | k, _ -> raise (Parse_error (lineno, "unknown node option " ^ k)))
        opts;
      let id = Hashtbl.length t.node_tbl in
      let n = Node.create t.cf_engine ~name ~id in
      declare lineno t.node_tbl "node" name n;
      t.node_order <- name :: t.node_order;
      List.iter
        (fun net_name -> (find_or lineno t.nets "network" net_name).attach_node n)
        !nets
  | "channel" :: name :: opts ->
      let net = ref None and members = ref [] in
      let config = ref Config.default in
      (* rendezvous=auto resolves against the channel's fabric, which
         may be named later on the line — defer until net= is known. *)
      let rendezvous_auto = ref false in
      let positive_int key v =
        let n = parse_int lineno key v in
        if n < 1 then
          raise
            (Parse_error (lineno, Printf.sprintf "%s expects an integer >= 1" key));
        n
      in
      List.iter
        (fun tok ->
          match split_kv lineno tok with
          | "net", v -> net := Some (find_or lineno t.nets "network" v)
          | "nodes", v -> members := comma v
          | "slot_payload", v ->
              config :=
                { !config with sisci_slot_payload = positive_int "slot_payload" v }
          | "dma_threshold", v ->
              config :=
                { !config with sisci_dma_threshold = positive_int "dma_threshold" v }
          | "rendezvous", v -> (
              match v with
              | "auto" -> rendezvous_auto := true
              | "off" ->
                  rendezvous_auto := false;
                  config := { !config with rendezvous_threshold = None }
              | _ ->
                  config :=
                    { !config with
                      rendezvous_threshold = Some (positive_int "rendezvous" v) })
          | "regcache", v ->
              let n = parse_int lineno "regcache" v in
              if n < 0 then
                raise
                  (Parse_error (lineno, "regcache expects an integer >= 0"));
              config := { !config with regcache_entries = n }
          | "regcache_bytes", v ->
              config :=
                { !config with
                  regcache_bytes = Some (positive_int "regcache_bytes" v) }
          | "aggregation", v ->
              config := { !config with aggregation = parse_bool lineno "aggregation" v }
          | "checked", v ->
              config := { !config with checked = parse_bool lineno "checked" v }
          | "slots", v ->
              config := { !config with sisci_ring_slots = parse_int lineno "slots" v }
          | "connect_timeout_us", v ->
              config :=
                { !config with
                  tcp_connect_timeout =
                    Some (Time.us (parse_float lineno "connect_timeout_us" v)) }
          | "dma", v ->
              config := { !config with sisci_use_dma = parse_bool lineno "dma" v }
          | "rx", v ->
              let rx_interaction =
                match v with
                | "poll" -> Config.Rx_poll
                | "interrupt" -> Config.Rx_interrupt
                | "adaptive" -> Config.Rx_adaptive Config.default_adaptive_window
                | _ -> raise (Parse_error (lineno, "rx expects poll|interrupt|adaptive"))
              in
              config := { !config with rx_interaction }
          | k, _ -> raise (Parse_error (lineno, "unknown channel option " ^ k)))
        opts;
      let net =
        match !net with
        | Some n -> n
        | None -> raise (Parse_error (lineno, "channel needs net="))
      in
      (if !rendezvous_auto then
         let fabric = string_of_kind net.kind in
         match Crossover.lookup ~fabric () with
         | Some bytes_count ->
             config := { !config with rendezvous_threshold = Some bytes_count }
         | None ->
             raise
               (Parse_error
                  (lineno,
                   Printf.sprintf
                     "rendezvous=auto: no measured crossover for fabric %S \
                      in %s (run: madbench crossover)"
                     fabric Crossover.default_file)));
      let ranks =
        List.map (fun node_name -> rank_of t node_name) !members
      in
      if ranks = [] then raise (Parse_error (lineno, "channel needs nodes="));
      let chan =
        Channel.create t.cf_session (net.driver_of ()) ~config:!config ~ranks ()
      in
      declare lineno t.chan_tbl "channel" name chan;
      t.chan_order <- name :: t.chan_order
  | "vchannel" :: name :: opts ->
      let chans = ref [] and mtu = ref None in
      let overhead = ref None and cap = ref None in
      let reliable = ref false and patience = ref None in
      let credits = ref None and gw_pool = ref None in
      let sched = ref None and aggr_max = ref None and aggr_flush = ref None in
      let version = ref None and coordinator = ref None in
      let election = ref false and topo_quorum = ref None in
      let coll = ref None and coll_fanout = ref None and coll_quorum = ref None in
      let positive_int key v =
        let n = parse_int lineno key v in
        if n < 1 then
          raise
            (Parse_error (lineno, Printf.sprintf "%s expects an integer >= 1" key));
        n
      in
      let positive_float key v =
        let f = parse_float lineno key v in
        if f <= 0.0 then
          raise
            (Parse_error (lineno, Printf.sprintf "%s expects a number > 0" key));
        f
      in
      List.iter
        (fun tok ->
          match split_kv lineno tok with
          | "channels", v ->
              chans :=
                List.map (fun cn -> find_or lineno t.chan_tbl "channel" cn) (comma v)
          | "mtu", v -> mtu := Some (parse_int lineno "mtu" v)
          | "gateway_overhead_us", v ->
              overhead := Some (Time.us (parse_float lineno "gateway_overhead_us" v))
          | "ingress_cap", v -> cap := Some (parse_float lineno "ingress_cap" v)
          | "reliable", v -> reliable := parse_bool lineno "reliable" v
          | "patience_us", v ->
              patience := Some (Time.us (parse_float lineno "patience_us" v))
          | "credits", v -> credits := Some (positive_int "credits" v)
          | "gw_pool", v -> gw_pool := Some (positive_int "gw_pool" v)
          | "sched", v -> (
              match v with
              | "fifo" -> sched := Some `Fifo
              | "aggreg" -> sched := Some `Aggreg
              | _ -> raise (Parse_error (lineno, "sched expects fifo|aggreg")))
          | "aggr_max", v -> aggr_max := Some (positive_int "aggr_max" v)
          | "aggr_flush_us", v ->
              aggr_flush := Some (Time.us (positive_float "aggr_flush_us" v))
          | "version", v ->
              let n = parse_int lineno "version" v in
              if n < 1 then
                raise
                  (Parse_error (lineno, "version expects an integer >= 1"));
              version := Some n
          | "coordinator", v ->
              coordinator :=
                Some (find_or lineno t.node_tbl "node" v).Node.id
          | "election", v -> (
              match v with
              | "on" -> election := true
              | "off" -> election := false
              | _ -> raise (Parse_error (lineno, "election expects on|off")))
          | "topo_quorum", v ->
              topo_quorum := Some (positive_int "topo_quorum" v)
          | "coll", v -> (
              match v with
              | "tree" -> coll := Some Madeleine.Collectives.Tree
              | "flat" -> coll := Some Madeleine.Collectives.Flat
              | _ -> raise (Parse_error (lineno, "coll expects tree|flat")))
          | "coll_fanout", v ->
              let n = parse_int lineno "coll_fanout" v in
              if n < 2 then
                raise
                  (Parse_error (lineno, "coll_fanout expects an integer >= 2"));
              coll_fanout := Some n
          | "coll_quorum", v ->
              coll_quorum := Some (positive_int "coll_quorum" v)
          | k, _ -> raise (Parse_error (lineno, "unknown vchannel option " ^ k)))
        opts;
      if !chans = [] then raise (Parse_error (lineno, "vchannel needs channels="));
      (match (!sched, !aggr_max, !aggr_flush) with
      | Some `Aggreg, _, _ | _, None, None -> ()
      | _, Some _, _ ->
          raise (Parse_error (lineno, "aggr_max= requires sched=aggreg"))
      | _, _, Some _ ->
          raise (Parse_error (lineno, "aggr_flush_us= requires sched=aggreg")));
      (match (!version, !coordinator) with
      | None, Some _ ->
          raise (Parse_error (lineno, "coordinator= requires version="))
      | _ -> ());
      (* Election rides the live-topology and reliability planes: quorum
         is counted over sentinel ballots and membership epochs. *)
      (match (!election, !topo_quorum) with
      | false, Some _ ->
          raise (Parse_error (lineno, "topo_quorum= requires election=on"))
      | _ -> ());
      if !election && !version = None then
        raise (Parse_error (lineno, "election=on requires version="));
      if !election && not !reliable then
        raise (Parse_error (lineno, "election=on requires reliable=true"));
      (match (!coll, !coll_fanout) with
      | Some Madeleine.Collectives.Tree, _ | _, None -> ()
      | _, Some _ ->
          raise (Parse_error (lineno, "coll_fanout= requires coll=tree")));
      (match (!coll, !coll_quorum) with
      | None, Some _ ->
          raise (Parse_error (lineno, "coll_quorum= requires coll="))
      | _ -> ());
      let vc_sched =
        match !sched with
        | None -> None
        | Some `Fifo -> Some Madeleine.Sched.Fifo
        | Some `Aggreg ->
            Some
              (Madeleine.Sched.Aggreg
                 { aggr_max = !aggr_max; aggr_flush = !aggr_flush })
      in
      let vc_faults =
        if not !reliable then None
        else
          match t.cf_faults with
          | Some _ as plane -> plane
          | None ->
              raise
                (Parse_error
                   (lineno,
                    "reliable=true requires a prior faults seed=N declaration"))
      in
      let vc =
        Madeleine.Vchannel.create t.cf_session ?mtu:!mtu ?patience:!patience
          ?gateway_overhead:!overhead ?ingress_cap_mb_s:!cap
          ?credits:!credits ?gw_pool:!gw_pool ?faults:vc_faults ?sched:vc_sched
          ?topology:!version ?coordinator:!coordinator ~election:!election
          ?topo_quorum:!topo_quorum !chans
      in
      declare lineno t.vchan_tbl "vchannel" name vc;
      (match !coll with
      | None -> ()
      | Some algo ->
          Hashtbl.replace t.coll_tbl name
            (Madeleine.Collectives.create ~algo ?fanout:!coll_fanout
               ?quorum:!coll_quorum vc));
      t.vchan_order <- name :: t.vchan_order
  | keyword :: _ ->
      raise (Parse_error (lineno, Printf.sprintf "unknown declaration %S" keyword))

let load text =
  let cf_engine = Engine.create () in
  let t =
    {
      cf_engine;
      cf_session = Madeleine.Session.create cf_engine;
      cf_faults = None;
      nets = Hashtbl.create 8;
      node_tbl = Hashtbl.create 16;
      node_order = [];
      chan_tbl = Hashtbl.create 8;
      chan_order = [];
      vchan_tbl = Hashtbl.create 4;
      vchan_order = [];
      coll_tbl = Hashtbl.create 4;
      net_order = [];
    }
  in
  String.split_on_char '\n' text
  |> List.iteri (fun i line ->
         let line =
           match String.index_opt line '#' with
           | Some j -> String.sub line 0 j
           | None -> line
         in
         parse_line t (i + 1) line);
  t

let load_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let buf = really_input_string ic n in
  close_in ic;
  load buf
