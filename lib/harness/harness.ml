(* Shared world-building and measurement helpers for the benchmark
   harness and integration tests: the simulated testbeds mirroring the
   paper's clusters, and the ping-pong measurement methodology of §5. *)


module Engine = Marcel.Engine
module Time = Marcel.Time
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams
module Mad = Madeleine.Api
module Channel = Madeleine.Channel
module Config = Madeleine.Config
module Iface = Madeleine.Iface
module Vc = Madeleine.Vchannel

let payload n seed = Simnet.Rng.bytes (Simnet.Rng.create ~seed) n

type world = {
  engine : Engine.t;
  session : Madeleine.Session.t;
  channel : Channel.t;
}

let make_world ?config ~n driver_of_nodes link =
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~name:"net" ~link in
  let nodes =
    List.init n (fun i ->
        let node = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Fabric.attach fabric node;
        node)
  in
  let driver = driver_of_nodes engine fabric nodes in
  let session = Madeleine.Session.create engine in
  let channel =
    Channel.create session driver ?config ~ranks:(List.init n Fun.id) ()
  in
  { engine; session; channel }

let bip_driver engine fabric nodes =
  let net = Bip.make_net engine fabric in
  let endpoints = List.map (Bip.attach net) nodes in
  Madeleine.Pmm_bip.driver (List.nth endpoints)

let sisci_driver engine fabric nodes =
  let net = Sisci.make_net engine fabric in
  let adapters = List.map (Sisci.attach net) nodes in
  Madeleine.Pmm_sisci.driver (List.nth adapters)

let tcp_driver engine fabric nodes =
  let net = Tcpnet.make_net engine fabric in
  let stacks = List.map (Tcpnet.attach net) nodes in
  Madeleine.Pmm_tcp.driver (List.nth stacks)

let via_driver engine fabric nodes =
  let net = Via.make_net engine fabric in
  let hosts = List.map (Via.attach net) nodes in
  Madeleine.Pmm_via.driver (List.nth hosts)

let sbp_driver engine fabric nodes =
  let net = Sbp.make_net engine fabric in
  let hosts = List.map (Sbp.attach net) nodes in
  Madeleine.Pmm_sbp.driver (List.nth hosts)

let bip_world ?config () = make_world ?config ~n:2 bip_driver Netparams.myrinet
let sisci_world ?config () = make_world ?config ~n:2 sisci_driver Netparams.sci
let tcp_world ?config () =
  make_world ?config ~n:2 tcp_driver Netparams.fast_ethernet

let via_world ?config () =
  make_world ?config ~n:2 via_driver Netparams.fast_ethernet

let sbp_world ?config () =
  make_world ?config ~n:2 sbp_driver Netparams.fast_ethernet

(* One-way time of a Madeleine ping-pong, per the paper's methodology. *)
let mad_pingpong w ~bytes_count ~iters =
  let ep0 = Channel.endpoint w.channel ~rank:0 in
  let ep1 = Channel.endpoint w.channel ~rank:1 in
  let data = payload bytes_count 9L in
  let started = ref Time.zero and finished = ref Time.zero in
  Engine.spawn w.engine ~name:"ping" (fun () ->
      started := Engine.now w.engine;
      for _ = 1 to iters do
        let oc = Mad.begin_packing ep0 ~remote:1 in
        Mad.pack oc data;
        Mad.end_packing oc;
        let ic = Mad.begin_unpacking_from ep0 ~remote:1 in
        Mad.unpack ic data;
        Mad.end_unpacking ic
      done;
      finished := Engine.now w.engine);
  Engine.spawn w.engine ~name:"pong" (fun () ->
      let sink = Bytes.create bytes_count in
      for _ = 1 to iters do
        let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
        Mad.unpack ic sink;
        Mad.end_unpacking ic;
        let oc = Mad.begin_packing ep1 ~remote:0 in
        Mad.pack oc sink;
        Mad.end_packing oc
      done);
  Engine.run w.engine;
  Time.diff !finished !started / (2 * iters)

(* Raw-interface ping-pongs, for the "raw BIP" baseline of Fig. 5. *)
let raw_bip_pingpong ~bytes_count ~iters =
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~name:"myri" ~link:Netparams.myrinet in
  let n0 = Node.create engine ~name:"n0" ~id:0 in
  let n1 = Node.create engine ~name:"n1" ~id:1 in
  Fabric.attach fabric n0;
  Fabric.attach fabric n1;
  let net = Bip.make_net engine fabric in
  let b0 = Bip.attach net n0 and b1 = Bip.attach net n1 in
  let data = payload bytes_count 7L in
  let started = ref Time.zero and finished = ref Time.zero in
  Engine.spawn engine ~name:"ping" (fun () ->
      started := Engine.now engine;
      for _ = 1 to iters do
        Bip.send b0 ~dst:1 ~tag:0 data;
        ignore (Bip.recv b0 ~src:1 ~tag:0 ~len:bytes_count data)
      done;
      finished := Engine.now engine);
  Engine.spawn engine ~name:"pong" (fun () ->
      let sink = Bytes.create bytes_count in
      for _ = 1 to iters do
        ignore (Bip.recv b1 ~src:0 ~tag:0 ~len:bytes_count sink);
        Bip.send b1 ~dst:0 ~tag:0 sink
      done);
  Engine.run engine;
  Time.diff !finished !started / (2 * iters)

(* The two-cluster testbed of §6.2 with its gateway node. *)
type cluster_world = {
  cw_engine : Engine.t;
  cw_session : Madeleine.Session.t;
  cw_gateway : Node.t;
  ch_sci : Channel.t;
  ch_myri : Channel.t;
}

let two_cluster_world ?config () =
  let engine = Engine.create () in
  let sci_fab = Fabric.create engine ~name:"sci" ~link:Netparams.sci in
  let myri_fab = Fabric.create engine ~name:"myri" ~link:Netparams.myrinet in
  let n0 = Node.create engine ~name:"a" ~id:0 in
  let gw = Node.create engine ~name:"gw" ~id:1 in
  let n2 = Node.create engine ~name:"b" ~id:2 in
  Fabric.attach sci_fab n0;
  Fabric.attach sci_fab gw;
  Fabric.attach myri_fab gw;
  Fabric.attach myri_fab n2;
  let sci_net = Sisci.make_net engine sci_fab in
  let s0 = Sisci.attach sci_net n0 and s1 = Sisci.attach sci_net gw in
  let bip_net = Bip.make_net engine myri_fab in
  let b1 = Bip.attach bip_net gw and b2 = Bip.attach bip_net n2 in
  let sisci_drv =
    Madeleine.Pmm_sisci.driver (function
      | 0 -> s0
      | 1 -> s1
      | r -> invalid_arg (string_of_int r))
  in
  let bip_drv =
    Madeleine.Pmm_bip.driver (function
      | 1 -> b1
      | 2 -> b2
      | r -> invalid_arg (string_of_int r))
  in
  let session = Madeleine.Session.create engine in
  let ch_sci = Channel.create session sisci_drv ?config ~ranks:[ 0; 1 ] () in
  let ch_myri = Channel.create session bip_drv ?config ~ranks:[ 1; 2 ] () in
  { cw_engine = engine; cw_session = session; cw_gateway = gw; ch_sci; ch_myri }

(* Inter-cluster one-way bandwidth through the gateway for one packet
   size, as in Figs. 10/11. *)
(* Returns (bandwidth MB/s, gateway PCI utilization over the run). *)
let forwarding_run ?gateway_overhead ?extra_gateway_copy ?ingress_cap_mb_s
    ~mtu ~src ~dst ~bytes_count () =
  let w = two_cluster_world () in
  let vc =
    Vc.create w.cw_session ~mtu ?gateway_overhead ?extra_gateway_copy
      ?ingress_cap_mb_s [ w.ch_sci; w.ch_myri ]
  in
  let data = payload bytes_count 8L in
  let t0 = ref Time.zero and t1 = ref Time.zero in
  Engine.spawn w.cw_engine ~name:"sender" (fun () ->
      t0 := Engine.now w.cw_engine;
      let oc = Vc.begin_packing vc ~me:src ~remote:dst in
      Vc.pack oc data;
      Vc.end_packing oc);
  Engine.spawn w.cw_engine ~name:"receiver" (fun () ->
      let sink = Bytes.create bytes_count in
      let ic = Vc.begin_unpacking_from vc ~me:dst ~remote:src in
      Vc.unpack ic sink;
      Vc.end_unpacking ic;
      t1 := Engine.now w.cw_engine);
  Engine.run w.cw_engine;
  let bw = Time.rate_mb_s ~bytes_count (Time.diff !t1 !t0) in
  let util =
    Simnet.Fluid.utilization w.cw_gateway.Node.pci ~now:(Engine.now w.cw_engine)
  in
  (bw, util)

let forwarding_bandwidth ?gateway_overhead ?extra_gateway_copy
    ?ingress_cap_mb_s ~mtu ~src ~dst ~bytes_count () =
  fst
    (forwarding_run ?gateway_overhead ?extra_gateway_copy ?ingress_cap_mb_s
       ~mtu ~src ~dst ~bytes_count ())

let message_sizes =
  [ 4; 16; 64; 256; 1024; 4096; 8192; 16384; 32768; 65536; 131072; 262144;
    524288; 1048576 ]

let iters_for n = if n <= 1024 then 30 else if n <= 65536 then 10 else 4


(* ------------------------------------------------------------------ *)
(* MPI worlds and measurements (Fig. 6) *)

type mpi_device_kind =
  | Chmad
  | Scidirect of Mpilite.Dev_scidirect.profile

type mpi_world = { mpi_engine : Engine.t; mpi_world : Mpilite.Mpi.world }

let make_mpi_world ~n device_kind =
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~name:"sci" ~link:Netparams.sci in
  let nodes =
    List.init n (fun i ->
        let node = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Fabric.attach fabric node;
        node)
  in
  let net = Sisci.make_net engine fabric in
  let adapters = Array.of_list (List.map (Sisci.attach net) nodes) in
  let ranks = List.init n Fun.id in
  let devices =
    match device_kind with
    | Chmad ->
        let driver = Madeleine.Pmm_sisci.driver (fun r -> adapters.(r)) in
        let session = Madeleine.Session.create engine in
        let channel = Madeleine.Channel.create session driver ~ranks () in
        Array.init n (fun rank -> Mpilite.Dev_chmad.make channel ~rank)
    | Scidirect profile ->
        let states =
          Mpilite.Dev_scidirect.make_states profile (fun r -> adapters.(r)) ranks
        in
        Array.init n (fun rank ->
            Mpilite.Dev_scidirect.make profile
              ~adapters:(fun r -> adapters.(r))
              ~ranks ~states ~rank)
  in
  { mpi_engine = engine; mpi_world = Mpilite.Mpi.create_world engine ~devices }

let mpi_pingpong kind ~bytes_count ~iters =
  let module Mpi = Mpilite.Mpi in
  let w = make_mpi_world ~n:2 kind in
  let data = payload bytes_count 9L in
  let t0 = ref Time.zero and t1 = ref Time.zero in
  Engine.spawn w.mpi_engine ~name:"ping" (fun () ->
      let c = Mpi.ctx w.mpi_world ~rank:0 in
      t0 := Engine.now w.mpi_engine;
      for _ = 1 to iters do
        Mpi.send c ~dst:1 ~tag:0 data;
        ignore (Mpi.recv c ~src:1 ~tag:0 data)
      done;
      t1 := Engine.now w.mpi_engine);
  Engine.spawn w.mpi_engine ~name:"pong" (fun () ->
      let c = Mpi.ctx w.mpi_world ~rank:1 in
      let buf = Bytes.create bytes_count in
      for _ = 1 to iters do
        ignore (Mpi.recv c ~src:0 ~tag:0 buf);
        Mpi.send c ~dst:0 ~tag:0 buf
      done);
  Engine.run w.mpi_engine;
  Time.diff !t1 !t0 / (2 * iters)

(* ------------------------------------------------------------------ *)
(* Nexus worlds and the RSR round trip (Fig. 7) *)

type nexus_proto = Nexus_mad_sisci | Nexus_mad_tcp

type nexus_world = { nx_engine : Engine.t; nx_world : Nexus.world }

let make_nexus_world ~n proto =
  let engine = Engine.create () in
  let channel =
    match proto with
    | Nexus_mad_sisci ->
        let fabric = Fabric.create engine ~name:"sci" ~link:Netparams.sci in
        let net = Sisci.make_net engine fabric in
        let adapters =
          Array.init n (fun i ->
              let node = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
              Fabric.attach fabric node;
              Sisci.attach net node)
        in
        let driver = Madeleine.Pmm_sisci.driver (fun r -> adapters.(r)) in
        Channel.create (Madeleine.Session.create engine) driver
          ~ranks:(List.init n Fun.id) ()
    | Nexus_mad_tcp ->
        let fabric =
          Fabric.create engine ~name:"eth" ~link:Netparams.fast_ethernet
        in
        let net = Tcpnet.make_net engine fabric in
        let stacks =
          Array.init n (fun i ->
              let node = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
              Fabric.attach fabric node;
              Tcpnet.attach net node)
        in
        let driver = Madeleine.Pmm_tcp.driver (fun r -> stacks.(r)) in
        Channel.create (Madeleine.Session.create engine) driver
          ~ranks:(List.init n Fun.id) ()
  in
  let transports = Array.init n (fun rank -> Nexus.mad_transport channel ~rank) in
  { nx_engine = engine; nx_world = Nexus.create_world engine ~transports }

(* One-way time of an RSR echo: client fires handler 0 at the server,
   whose handler echoes the payload back. *)
let nexus_roundtrip proto ~bytes_count ~iters =
  let module Nx = Nexus in
  let w = make_nexus_world ~n:2 proto in
  let c0 = Nx.ctx w.nx_world ~rank:0 in
  let c1 = Nx.ctx w.nx_world ~rank:1 in
  let reply_box = Marcel.Mailbox.create () in
  let client_ep =
    Nx.make_endpoint c0
      ~handlers:[| (fun _ buf -> Marcel.Mailbox.put reply_box (Nx.Buffer.size buf)) |]
  in
  let client_sp = Nx.startpoint client_ep in
  let server_ep =
    Nx.make_endpoint c1
      ~handlers:
        [|
          (fun ctx buf ->
            let len = Nx.Buffer.get_int buf in
            let data = Nx.Buffer.get_bytes buf ~len in
            let reply = Nx.Buffer.create () in
            Nx.Buffer.put_bytes reply data;
            Nx.send_rsr ctx client_sp ~handler:0 reply);
        |]
  in
  let server_sp = Nx.startpoint server_ep in
  let t0 = ref Time.zero and t1 = ref Time.zero in
  Engine.spawn w.nx_engine ~name:"client" (fun () ->
      let data = Bytes.create bytes_count in
      t0 := Engine.now w.nx_engine;
      for _ = 1 to iters do
        let buf = Nx.Buffer.create () in
        Nx.Buffer.put_int buf bytes_count;
        Nx.Buffer.put_bytes buf data;
        Nx.send_rsr c0 server_sp ~handler:0 buf;
        ignore (Marcel.Mailbox.take reply_box)
      done;
      t1 := Engine.now w.nx_engine);
  Engine.run w.nx_engine;
  Time.diff !t1 !t0 / (2 * iters)
