(* Loader for the measured eager/rendezvous crossover points written by
   `madbench crossover` (BENCH_crossover.json). Each fabric's record
   sits on one line of the JSON, so plain string scanning suffices —
   the toolchain has no JSON library, and the bench writers guarantee
   the one-object-per-line shape. *)

let default_file = "BENCH_crossover.json"

let find_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = sub then Some (i + m)
    else go (i + 1)
  in
  go 0

let string_field line key =
  match find_sub line (Printf.sprintf "\"%s\": \"" key) with
  | None -> None
  | Some start -> (
      match String.index_from_opt line start '"' with
      | None -> None
      | Some stop -> Some (String.sub line start (stop - start)))

let int_field line key =
  match find_sub line (Printf.sprintf "\"%s\": " key) with
  | None -> None
  | Some start ->
      let n = String.length line in
      let stop = ref start in
      while
        !stop < n && match line.[!stop] with '0' .. '9' -> true | _ -> false
      do
        incr stop
      done;
      int_of_string_opt (String.sub line start (!stop - start))

let load ?(file = default_file) () =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in file in
    let acc = ref [] in
    (try
       while true do
         let line = input_line ic in
         match
           (string_field line "fabric", int_field line "crossover_bytes")
         with
         | Some fabric, Some bytes_count -> acc := (fabric, bytes_count) :: !acc
         | _ -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !acc
  end

let lookup ?file ~fabric () = List.assoc_opt fabric (load ?file ())
