type 'a t = {
  capacity : int option;
  items : 'a Queue.t;
  takers : ('a -> unit) Queue.t;
  putters : (unit -> unit) Queue.t;
  reg_taker : ('a -> unit) -> unit; (* preallocated suspend registrars *)
  reg_putter : (unit -> unit) -> unit;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Mailbox.create: capacity <= 0"
  | Some _ | None -> ());
  let takers = Queue.create () and putters = Queue.create () in
  {
    capacity;
    items = Queue.create ();
    takers;
    putters;
    reg_taker = (fun wake -> Queue.push wake takers);
    reg_putter = (fun wake -> Queue.push wake putters);
  }

let length t = Queue.length t.items

let full t =
  match t.capacity with None -> false | Some c -> Queue.length t.items >= c

let rec put t v =
  if not (Queue.is_empty t.takers) then (Queue.pop t.takers) v
  else begin
      if full t then begin
        Engine.suspend ~name:"mailbox.put" t.reg_putter;
        (* Another thread may have refilled the box while our wake-up was
           pending; re-check from scratch. *)
        put t v
      end
      else Queue.push v t.items
  end

let take t =
  if not (Queue.is_empty t.items) then begin
    let v = Queue.pop t.items in
    if not (Queue.is_empty t.putters) then (Queue.pop t.putters) ();
    v
  end
  else Engine.suspend ~name:"mailbox.take" t.reg_taker

let take_opt t =
  if Queue.is_empty t.items then None
  else begin
    let v = Queue.pop t.items in
    if not (Queue.is_empty t.putters) then (Queue.pop t.putters) ();
    Some v
  end
