type t = int
type span = int

let zero = 0
let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : int) (b : int) = Stdlib.( <= ) a b
let ( < ) (a : int) (b : int) = Stdlib.( < ) a b

let add t d =
  if Stdlib.( < ) (d : int) 0 then invalid_arg "Time.add: negative span";
  t + d

let diff later earlier =
  let d = later - earlier in
  if Stdlib.( < ) (d : int) 0 then invalid_arg "Time.diff: negative result";
  d

let ns n =
  if Stdlib.( < ) (n : int) 0 then invalid_arg "Time.ns: negative";
  n

let of_float_ns f =
  if Stdlib.( < ) f 0.0 then invalid_arg "Time: negative span";
  int_of_float (Float.round f)

let us f = of_float_ns (f *. 1e3)
let ms f = of_float_ns (f *. 1e6)
let s f = of_float_ns (f *. 1e9)

let span_add = add

let span_mul d k =
  if Stdlib.( < ) (k : int) 0 then invalid_arg "Time.span_mul: negative factor";
  d * k

let span_scale d f = of_float_ns (float_of_int d *. f)

let to_ns t = t
let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_s t = float_of_int t /. 1e9

let bytes_at_rate ~bytes_count ~mb_per_s =
  if Stdlib.( <= ) mb_per_s 0.0 then invalid_arg "Time.bytes_at_rate: rate <= 0";
  of_float_ns (float_of_int bytes_count /. mb_per_s *. 1e3)

let rate_mb_s ~bytes_count span =
  if Int.equal span 0 then invalid_arg "Time.rate_mb_s: zero span";
  float_of_int bytes_count /. (float_of_int span /. 1e3)

let pp ppf t =
  let f = float_of_int t in
  if Stdlib.( < ) f 1e3 then Format.fprintf ppf "%dns" t
  else if Stdlib.( < ) f 1e6 then Format.fprintf ppf "%.2fus" (f /. 1e3)
  else if Stdlib.( < ) f 1e9 then Format.fprintf ppf "%.3fms" (f /. 1e6)
  else Format.fprintf ppf "%.3fs" (f /. 1e9)
