(* Monomorphic 4-ary min-heap on (time, seq) keys, the engine's event
   queue. Keys live in flat [int array]s — virtual times are nanosecond
   counts that fit comfortably in 63-bit immediates — so ordering is two
   native integer compares with no closure call, no [Int64] boxing and
   no polymorphic comparison. Push and take bubble a hole instead of
   swapping, writing each slot once; take clears the vacated action slot
   so popped continuations (and the buffers they capture) are
   collectible immediately. *)

let nop () = ()

type t = {
  mutable times : int array; (* ns; key major *)
  mutable seqs : int array; (* FIFO tie-break; key minor *)
  mutable acts : (unit -> unit) array;
  mutable size : int;
}

let initial_capacity = 256

let create () =
  {
    times = Array.make initial_capacity 0;
    seqs = Array.make initial_capacity 0;
    acts = Array.make initial_capacity nop;
    size = 0;
  }

let length h = h.size
let is_empty h = h.size = 0

let grow h =
  let cap = Array.length h.times in
  let ncap = 2 * cap in
  let times = Array.make ncap 0
  and seqs = Array.make ncap 0
  and acts = Array.make ncap nop in
  Array.blit h.times 0 times 0 h.size;
  Array.blit h.seqs 0 seqs 0 h.size;
  Array.blit h.acts 0 acts 0 h.size;
  h.times <- times;
  h.seqs <- seqs;
  h.acts <- acts

let push h ~time ~seq act =
  if h.size = Array.length h.times then grow h;
  let times = h.times and seqs = h.seqs and acts = h.acts in
  let t : int = time in
  (* Bubble the hole up from the new leaf; indices stay in [0, size]. *)
  let i = ref h.size in
  h.size <- h.size + 1;
  let placed = ref false in
  while (not !placed) && !i > 0 do
    let p = (!i - 1) / 4 in
    let tp = Array.unsafe_get times p in
    if t < tp || (t = tp && seq < Array.unsafe_get seqs p) then begin
      Array.unsafe_set times !i tp;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs p);
      Array.unsafe_set acts !i (Array.unsafe_get acts p);
      i := p
    end
    else placed := true
  done;
  Array.unsafe_set times !i t;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set acts !i act

let min_time_ns h = if h.size = 0 then raise Not_found else Array.unsafe_get h.times 0

let min_time = min_time_ns

let take h =
  if h.size = 0 then raise Not_found;
  let act = Array.unsafe_get h.acts 0 in
  let n = h.size - 1 in
  h.size <- n;
  let times = h.times and seqs = h.seqs and acts = h.acts in
  if n = 0 then Array.unsafe_set acts 0 nop
  else begin
    (* Re-insert the last element through the hole at the root. *)
    let t = Array.unsafe_get times n
    and s = Array.unsafe_get seqs n
    and a = Array.unsafe_get acts n in
    Array.unsafe_set acts n nop;
    let i = ref 0 in
    let placed = ref false in
    while not !placed do
      let base = (4 * !i) + 1 in
      if base >= n then placed := true
      else begin
        let last = if base + 3 < n - 1 then base + 3 else n - 1 in
        let m = ref base in
        let mt = ref (Array.unsafe_get times base) in
        let ms = ref (Array.unsafe_get seqs base) in
        for c = base + 1 to last do
          let ct = Array.unsafe_get times c in
          if ct < !mt || (ct = !mt && Array.unsafe_get seqs c < !ms) then begin
            m := c;
            mt := ct;
            ms := Array.unsafe_get seqs c
          end
        done;
        if !mt < t || (!mt = t && !ms < s) then begin
          Array.unsafe_set times !i !mt;
          Array.unsafe_set seqs !i !ms;
          Array.unsafe_set acts !i (Array.unsafe_get acts !m);
          i := !m
        end
        else placed := true
      end
    done;
    Array.unsafe_set times !i t;
    Array.unsafe_set seqs !i s;
    Array.unsafe_set acts !i a
  end;
  act
