type thread_info = {
  thread_name : string;
  daemon : bool;
  mutable blocked_on : string; (* "" when runnable; otherwise why blocked *)
  mutable reg_slot : int; (* index in the live registry; -1 once dead *)
}

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  events : Eventq.t;
  mutable live : thread_info array; (* registry; [0, live_n) is valid *)
  mutable live_n : int;
  mutable failure : exn option;
  mutable processed : int;
  owner : int; (* id of the domain that created the engine *)
}

exception Stalled of string list

(* Effects performed by thread bodies. The handler is installed once per
   thread by [spawn]; resuming a continuation keeps it installed, so
   [sleep]/[suspend] work at any depth inside the thread. *)
type _ Effect.t +=
  | Sleep : Time.span -> unit Effect.t
  | Suspend : string * (('a -> unit) -> unit) -> 'a Effect.t
  | Self_name : string Effect.t

let no_thread =
  { thread_name = "<none>"; daemon = true; blocked_on = ""; reg_slot = -1 }

let create () =
  {
    clock = Time.zero;
    seq = 0;
    events = Eventq.create ();
    live = [||];
    live_n = 0;
    failure = None;
    processed = 0;
    owner = (Domain.self () :> int);
  }

(* The world-isolation invariant (docs/MODEL.md): an engine and every
   object hanging off it belong to the domain that created it. Nothing
   here is synchronized, so letting another domain drive the engine
   would be a data race on the clock, the event queue and all per-world
   state. Checked at the API entry points, not per event. *)
let check_owner t =
  if (Domain.self () :> int) <> t.owner then
    invalid_arg
      "Marcel.Engine: engine used from a domain other than its creator \
       (engines must never cross domains; see docs/MODEL.md)"

let now t = t.clock
let events_processed t = t.processed

let schedule t time action =
  if Time.( < ) time t.clock then invalid_arg "Engine: scheduling in the past";
  let seq = t.seq + 1 in
  t.seq <- seq;
  Eventq.push t.events ~time ~seq action

let at t time action =
  check_owner t;
  schedule t time action

let sleep d = Effect.perform (Sleep d)
let yield () = Effect.perform (Sleep 0)
let suspend ~name register = Effect.perform (Suspend (name, register))
let self_name () = Effect.perform Self_name

(* O(1) registry bookkeeping: threads record their slot and leave by
   swap-remove, so a storm of short-lived threads costs constant work
   per exit instead of a scan of every live thread. *)
let register t info =
  let n = t.live_n in
  if n = Array.length t.live then begin
    let ncap = if n = 0 then 16 else 2 * n in
    let grown = Array.make ncap no_thread in
    Array.blit t.live 0 grown 0 n;
    t.live <- grown
  end;
  t.live.(n) <- info;
  info.reg_slot <- n;
  t.live_n <- n + 1

let unregister t info =
  let i = info.reg_slot in
  if i >= 0 then begin
    let n = t.live_n - 1 in
    let last = t.live.(n) in
    t.live.(i) <- last;
    last.reg_slot <- i;
    t.live.(n) <- no_thread;
    t.live_n <- n;
    info.reg_slot <- -1
  end

let spawn t ?(daemon = false) ~name f =
  check_owner t;
  let info = { thread_name = name; daemon; blocked_on = ""; reg_slot = -1 } in
  register t info;
  let finish () = unregister t info in
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> finish ());
      exnc =
        (fun e ->
          finish ();
          match t.failure with None -> t.failure <- Some e | Some _ -> ());
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep d ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  info.blocked_on <- "sleep";
                  schedule t (Time.add t.clock d) (fun () ->
                      info.blocked_on <- "";
                      Effect.Deep.continue k ()))
          | Suspend (why, register) ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  info.blocked_on <- why;
                  let resumed = ref false in
                  let wake v =
                    if not !resumed then begin
                      resumed := true;
                      schedule t t.clock (fun () ->
                          info.blocked_on <- "";
                          Effect.Deep.continue k v)
                    end
                  in
                  register wake)
          | Self_name ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  Effect.Deep.continue k name)
          | _ -> None);
    }
  in
  schedule t t.clock (fun () -> Effect.Deep.match_with f () handler)

let run_until t deadline =
  check_owner t;
  if Time.( < ) deadline t.clock then
    invalid_arg "Engine.run_until: deadline in the past";
  let q = t.events in
  let dl : int = deadline in
  let rec loop () =
    match t.failure with
    | Some e ->
        t.failure <- None;
        raise e
    | None ->
        if (not (Eventq.is_empty q)) && Eventq.min_time_ns q <= dl then begin
          t.clock <- Eventq.min_time q;
          let act = Eventq.take q in
          t.processed <- t.processed + 1;
          act ();
          loop ()
        end
  in
  loop ();
  t.clock <- deadline

let run t =
  check_owner t;
  let q = t.events in
  let rec loop () =
    match t.failure with
    | Some e ->
        t.failure <- None;
        raise e
    | None ->
        if not (Eventq.is_empty q) then begin
          t.clock <- Eventq.min_time q;
          let act = Eventq.take q in
          t.processed <- t.processed + 1;
          act ();
          loop ()
        end
  in
  loop ();
  let blocked = ref [] in
  for i = t.live_n - 1 downto 0 do
    let info = t.live.(i) in
    let why = info.blocked_on in
    if why <> "" && not info.daemon then
      blocked :=
        Printf.sprintf "%s (on %s)" info.thread_name why :: !blocked
  done;
  if !blocked <> [] then raise (Stalled !blocked)
