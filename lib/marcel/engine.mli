(** Discrete-event engine with cooperative user-level threads.

    This is the *Marcel* substrate of the reproduction: the paper's systems
    run on the PM2 user-level thread library of the same name; here the
    threads double as discrete-event simulation processes. A thread runs
    until it performs a blocking operation ([sleep], [suspend] or one of the
    {!Mutex}/{!Condition}/{!Semaphore}/{!Mailbox}/{!Ivar} primitives built
    on them); the engine then advances the virtual clock to the next pending
    event. Execution is single-threaded and fully deterministic.

    {b World-isolation invariant:} an engine — and every simulation
    object hanging off it (nodes, fabrics, channels, buffer pools) —
    belongs to the domain that created it. Nothing in the engine is
    synchronized, so the entry points ({!spawn}, {!at}, {!run},
    {!run_until}) raise [Invalid_argument] when called from any other
    domain. Parallel sweeps (see {!Parsim} and docs/MODEL.md, "Parallel
    sweeps and the world-isolation invariant") therefore construct, run
    and tear down each world entirely inside one worker domain. *)

type t

exception Stalled of string list
(** Raised by {!run} when no events remain but some non-daemon threads are
    still blocked: a genuine protocol deadlock. The payload lists the
    blocked threads' names. *)

val create : unit -> t

val now : t -> Time.t
(** Current virtual time. *)

val events_processed : t -> int
(** Total events executed so far — thread resumptions, timer callbacks;
    the discrete-event engine's unit of work, for simulator-throughput
    reporting. *)

val spawn : t -> ?daemon:bool -> name:string -> (unit -> unit) -> unit
(** [spawn t ~name f] creates a thread running [f]. The thread starts at
    the current virtual instant, after already-scheduled events. A
    [daemon] thread (default [false]) is allowed to still be blocked when
    the event queue drains; use it for server loops that never
    terminate. An exception escaping [f] aborts the whole run: {!run}
    re-raises it. *)

val at : t -> Time.t -> (unit -> unit) -> unit
(** [at t instant f] schedules the raw callback [f] at [instant] (which
    must not be in the past). [f] must not block. *)

val run : t -> unit
(** Runs until the event queue is empty. Re-raises the first exception
    escaping any thread. Raises {!Stalled} if non-daemon threads remain
    blocked at quiescence. *)

val run_until : t -> Time.t -> unit
(** Runs events up to and including [deadline], leaving later events
    queued and advancing the clock to exactly [deadline]. Never raises
    {!Stalled} (the simulation may legitimately continue); useful for
    bounded executions and inspecting in-flight state. *)

(** {1 Operations usable only inside a thread body} *)

val sleep : Time.span -> unit
(** Advances this thread's virtual time by the given span. *)

val yield : unit -> unit
(** Re-schedules this thread after events already pending at the current
    instant. *)

val suspend : name:string -> (('a -> unit) -> unit) -> 'a
(** [suspend ~name register] blocks the current thread. [register] is
    called immediately with a [wake] function; storing [wake] somewhere
    and calling it later (with the value to return from [suspend]) resumes
    the thread at the *caller's* current virtual instant. Calling [wake]
    more than once is ignored. [name] labels what the thread is blocked
    on, for {!Stalled} reports. *)

val self_name : unit -> string
(** Name of the current thread (as given to [spawn]). *)
