(** Resizable-array binary min-heap with a user-supplied comparison.

    General-purpose: the engine's event queue is the specialized
    {!Eventq}. [pop] clears the array slot it vacates, so popped
    elements hold no hidden reference from the heap's backing store. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the minimum element. Raises [Not_found] on an
    empty heap. *)

val peek : 'a t -> 'a
(** Returns the minimum element without removing it. Raises [Not_found]
    on an empty heap. *)
