(** Monomorphic event queue: a 4-ary min-heap specialized to the
    engine's [(time, seq)] keys.

    Unlike the generic {!Heap}, keys are stored unboxed in flat integer
    arrays and compared with native [int] comparisons — no comparison
    closure, no [Int64] boxing, no polymorphic compare. Elements with
    equal times come out in increasing [seq] order, which is how the
    engine guarantees FIFO execution of same-instant events.

    Times must be non-negative and fit in an OCaml [int] (63 bits of
    nanoseconds ≈ 146 years of virtual time); {!Engine.at} enforces
    this. Keys are expected to be unique in [(time, seq)] — the engine's
    monotone sequence counter guarantees it. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val push : t -> time:Time.t -> seq:int -> (unit -> unit) -> unit
(** Inserts an action keyed by [(time, seq)]. *)

val min_time : t -> Time.t
(** Time key of the minimum element. Raises [Not_found] when empty. *)

val min_time_ns : t -> int
(** Same as {!min_time} ([Time.t] is an immediate int); kept as a
    separate name for hot loops that want the raw count. Raises
    [Not_found] when empty. *)

val take : t -> unit -> unit
(** Removes the minimum element and returns its action. The vacated
    slot is cleared so the action is collectible once it has run.
    Raises [Not_found] when empty. *)
