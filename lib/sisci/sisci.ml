module Engine = Marcel.Engine
module Time = Marcel.Time
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams
module Pipeline = Simnet.Pipeline
module Fluid = Simnet.Fluid

type local_segment = {
  owner : t;
  seg_id : int;
  mem : Bytes.t;
  mutable waiters : (unit -> unit) list;
  mutable data_hooks : (unit -> unit) list;
}

and remote_segment = { local_end : t; remote : local_segment }

and t = {
  net : net;
  adapter_node : Node.t;
  segments : (int, local_segment) Hashtbl.t;
  mutable polled : Time.span;
}

and net = {
  engine : Engine.t;
  fabric : Fabric.t;
  adapters : (int, t) Hashtbl.t;
  streams : (int * int, Simnet.Stream.t) Hashtbl.t;
  mutable spool : Bytes.t list; (* recycled write-snapshot buffers *)
}

let make_net engine fabric =
  {
    engine;
    fabric;
    adapters = Hashtbl.create 16;
    streams = Hashtbl.create 16;
    spool = [];
  }

let attach net node =
  if Hashtbl.mem net.adapters node.Node.id then
    invalid_arg "Sisci.attach: node already attached";
  if not (Fabric.attached net.fabric node) then
    invalid_arg "Sisci.attach: node not on the fabric";
  let t =
    { net; adapter_node = node; segments = Hashtbl.create 16; polled = 0 }
  in
  Hashtbl.add net.adapters node.Node.id t;
  t

let node t = t.adapter_node

let create_segment t ~segment_id ~size =
  if Hashtbl.mem t.segments segment_id then
    invalid_arg "Sisci.create_segment: id in use";
  if size <= 0 then invalid_arg "Sisci.create_segment: size <= 0";
  let seg =
    {
      owner = t;
      seg_id = segment_id;
      mem = Bytes.make size '\000';
      waiters = [];
      data_hooks = [];
    }
  in
  Hashtbl.add t.segments segment_id seg;
  seg

let connect t ~node_id ~segment_id =
  match Hashtbl.find_opt t.net.adapters node_id with
  | None -> raise Not_found
  | Some peer -> (
      match Hashtbl.find_opt peer.segments segment_id with
      | None -> raise Not_found
      | Some seg -> { local_end = t; remote = seg })

let segment_size seg = Bytes.length seg.mem
let remote_size rs = Bytes.length rs.remote.mem

let check_bounds mem ~off ~len op =
  if off < 0 || len < 0 || off + len > Bytes.length mem then
    invalid_arg (op ^ ": out of segment bounds")

(* Posted writes snapshot their payload so the sender may reuse its
   staging buffer immediately; the snapshots are recycled through a
   free list once delivered, so steady-state traffic allocates nothing
   on the major heap. Exact-size matching keeps a byte pool per frame
   geometry (slot frames, rendezvous bodies) without waste. *)
let spool_get net len =
  let rec go acc = function
    | [] -> Bytes.create len
    | b :: rest ->
        if Bytes.length b = len then begin
          net.spool <- List.rev_append acc rest;
          b
        end
        else go (b :: acc) rest
  in
  go [] net.spool

let spool_put net b = net.spool <- b :: net.spool

(* Deliver the payload into the remote segment and re-arm every poller. *)
let commit_blit rs ~off src ~pos ~len =
  let seg = rs.remote in
  Bytes.blit src pos seg.mem off len;
  let waiters = seg.waiters in
  seg.waiters <- [];
  List.iter (fun wake -> wake ()) waiters;
  List.iter (fun hook -> hook ()) seg.data_hooks

let commit_write rs ~off data =
  commit_blit rs ~off data ~pos:0 ~len:(Bytes.length data)

let set_data_hook seg hook = seg.data_hooks <- hook :: seg.data_hooks

let wire_use fluid = { Pipeline.fluid; weight = 1.0; rate_cap = None; cls = 0 }
let nothing () = ()

(* The SCI stream between two adapters: a persistent FIFO pipeline
   carrying posted writes from the sender's NIC to the receiver's memory
   (TX link -> ring -> RX link -> receiver PCI as busmaster writes).
   One stream per directed pair keeps SCI's in-order delivery. *)
let stream rs =
  let net = rs.local_end.net in
  let src = rs.local_end.adapter_node and dst = rs.remote.owner.adapter_node in
  let key = (src.Node.id, dst.Node.id) in
  match Hashtbl.find_opt net.streams key with
  | Some st -> st
  | None ->
      let link = Fabric.link net.fabric in
      let st =
        Simnet.Stream.create net.engine
          ~name:(Printf.sprintf "sci.%d->%d" src.Node.id dst.Node.id)
          ~stages:
            [
              Pipeline.stage
                ~use:(wire_use (Fabric.tx net.fabric src))
                ~prop:link.Netparams.wire_lat "sci-tx";
              Pipeline.stage ~use:(wire_use (Fabric.rx net.fabric dst)) "sci-rx";
              Pipeline.stage ~use:(Simnet.Xfer.pci_use dst Simnet.Xfer.Dma)
                "dst-pci";
            ]
          ~mtu:link.Netparams.hw_mtu
      in
      Hashtbl.add net.streams key st;
      st

(* Both write paths return once the data has been pulled through the
   local PCI bus (posted writes / completed DMA descriptor reads); the
   SCI stream delivers to remote memory asynchronously, in order. The
   snapshot for the asynchronous delivery doubles as the only host copy:
   callers may hand a sub-range of a reusable staging buffer. *)
let remote_write rs ~off data ~pos ~len ~src_use ~setup =
  if pos < 0 || len < 0 || pos + len > Bytes.length data then
    invalid_arg "Sisci.remote_write: bad source range";
  check_bounds rs.remote.mem ~off ~len "Sisci.pio_write";
  Engine.sleep setup;
  let { Pipeline.fluid; weight; rate_cap; cls } = src_use in
  let net = rs.local_end.net in
  let staged = spool_get net len in
  Bytes.blit data pos staged 0 len;
  let st = stream rs in
  let total = len in
  let grain = (Fabric.link rs.local_end.net.fabric).Netparams.hw_mtu in
  (* Interleave the local PCI crossing with stream injection at packet
     grain: SCI forwards data as the bridge emits it, so remote delivery
     overlaps the issuing CPU's stores instead of trailing them. *)
  let deliver () =
    commit_write rs ~off staged;
    spool_put net staged
  in
  let rec go sent =
    let chunk = min grain (total - sent) in
    let last = sent + chunk >= total in
    Fluid.transfer fluid ~bytes_count:chunk ~weight ?rate_cap ~cls ();
    Simnet.Stream.push st ~bytes_count:chunk
      ~on_delivered:(if last then deliver else nothing);
    if not last then go (sent + chunk)
  in
  go 0

let pio_use rs = Simnet.Xfer.pci_use rs.local_end.adapter_node Simnet.Xfer.Pio

let dma_use rs =
  {
    Pipeline.fluid = rs.local_end.adapter_node.Node.pci;
    weight = Netparams.pci_weight_dma;
    rate_cap = Some Netparams.sisci_dma_rate_cap_mb_s;
    cls = 0;
  }

let pio_write rs ~off data =
  remote_write rs ~off data ~pos:0 ~len:(Bytes.length data) ~src_use:(pio_use rs)
    ~setup:Netparams.sisci_pio_overhead

let pio_write_sub rs ~off data ~pos ~len =
  remote_write rs ~off data ~pos ~len ~src_use:(pio_use rs)
    ~setup:Netparams.sisci_pio_overhead

let dma_write rs ~off data =
  remote_write rs ~off data ~pos:0 ~len:(Bytes.length data)
    ~src_use:(dma_use rs) ~setup:Netparams.sisci_dma_setup

let dma_write_sub rs ~off data ~pos ~len =
  remote_write rs ~off data ~pos ~len ~src_use:(dma_use rs)
    ~setup:Netparams.sisci_dma_setup

(* --- Zero-copy RDMA: registered user buffers -------------------------- *)

(* A registered (pinned) interval of a user buffer. Registration is a
   costed operation ({!Simnet.Cost.pin}): the pages are locked and their
   bus translations installed so the busmaster engine can read them
   directly, with no staging blit. Positions in the region are absolute
   offsets into the underlying buffer. *)
type region = {
  r_adapter : t;
  r_mem : Bytes.t;
  r_pos : int;
  r_len : int;
  mutable r_active : bool;
}

let register t data ~pos ~len =
  if pos < 0 || len <= 0 || pos + len > Bytes.length data then
    invalid_arg "Sisci.register: bad range";
  Simnet.Cost.pin len;
  { r_adapter = t; r_mem = data; r_pos = pos; r_len = len; r_active = true }

let deregister r =
  if not r.r_active then invalid_arg "Sisci.deregister: already deregistered";
  r.r_active <- false;
  Simnet.Cost.unpin r.r_len

let region_base r = r.r_pos
let region_length r = r.r_len

(* Expose a registered region as a connectable segment: the receiver side
   of a rendezvous registers its user buffer and hands the (id, offset)
   pair to the sender, whose RDMA write then lands directly in user
   memory. Free beyond the pin already charged by {!register}: exposure
   is a table insert, not a data movement. *)
let expose_region t ~segment_id r =
  if not r.r_active then invalid_arg "Sisci.expose_region: inactive region";
  if r.r_adapter != t then invalid_arg "Sisci.expose_region: wrong adapter";
  if Hashtbl.mem t.segments segment_id then
    invalid_arg "Sisci.expose_region: id in use";
  let seg =
    { owner = t; seg_id = segment_id; mem = r.r_mem; waiters = []; data_hooks = [] }
  in
  Hashtbl.add t.segments segment_id seg;
  seg

let retract_segment seg = Hashtbl.remove seg.owner.segments seg.seg_id

let rdma_use rs =
  {
    Pipeline.fluid = rs.local_end.adapter_node.Node.pci;
    weight = Netparams.pci_weight_dma;
    rate_cap = Some Netparams.sisci_rdma_rate_cap_mb_s;
    cls = 0;
  }

(* Single-descriptor busmaster write straight from the pinned user
   buffer: no spool snapshot, no staging copy on either host. Because
   there is no snapshot, the transfer reads the live user pages —
   so unlike the posted staged writes, this one blocks the caller until
   the data has landed in the remote segment: only then may the source
   range be modified or unpinned (real zero-copy has the same rule;
   its local completion means "the NIC read the pages", which the
   in-order SCI stream converts to remote delivery). *)
let rdma_write_direct rs ~off region ~pos ~len =
  if not region.r_active then
    invalid_arg "Sisci.rdma_write_direct: inactive region";
  if
    pos < region.r_pos || len <= 0 || pos + len > region.r_pos + region.r_len
  then invalid_arg "Sisci.rdma_write_direct: range outside region";
  check_bounds rs.remote.mem ~off ~len "Sisci.rdma_write_direct";
  Engine.sleep Netparams.sisci_dma_setup;
  let { Pipeline.fluid; weight; rate_cap; cls } = rdma_use rs in
  let st = stream rs in
  let grain = (Fabric.link rs.local_end.net.fabric).Netparams.hw_mtu in
  let delivered = ref false in
  let waiter = ref None in
  let deliver () =
    commit_blit rs ~off region.r_mem ~pos ~len;
    delivered := true;
    match !waiter with Some wake -> wake () | None -> ()
  in
  let rec go sent =
    let chunk = min grain (len - sent) in
    let last = sent + chunk >= len in
    Fluid.transfer fluid ~bytes_count:chunk ~weight ?rate_cap ~cls ();
    Simnet.Stream.push st ~bytes_count:chunk
      ~on_delivered:(if last then deliver else nothing);
    if not last then go (sent + chunk)
  in
  go 0;
  if not !delivered then
    Engine.suspend ~name:"sisci.rdma" (fun wake -> waiter := Some (fun () -> wake ()))

let read seg ~off ~len =
  check_bounds seg.mem ~off ~len "Sisci.read";
  Bytes.sub seg.mem off len

let get seg ~off =
  check_bounds seg.mem ~off ~len:1 "Sisci.get";
  Bytes.unsafe_get seg.mem off

let get_int32_le seg ~off =
  check_bounds seg.mem ~off ~len:4 "Sisci.get_int32_le";
  Int32.to_int (Bytes.get_int32_le seg.mem off)

let read_into seg ~off ~len dst ~pos =
  check_bounds seg.mem ~off ~len "Sisci.read_into";
  Bytes.blit seg.mem off dst pos len

let write_local seg ~off data =
  check_bounds seg.mem ~off ~len:(Bytes.length data) "Sisci.write_local";
  Bytes.blit data 0 seg.mem off (Bytes.length data)

let set seg ~off c =
  check_bounds seg.mem ~off ~len:1 "Sisci.set";
  Bytes.unsafe_set seg.mem off c

type rx_wait = Poll | Interrupt | Adaptive of Time.span

let rec wait_for_write seg =
  Engine.suspend ~name:"sisci.wait" (fun wake ->
      seg.waiters <- (fun () -> wake ()) :: seg.waiters)

and wait_until ?(mode = Poll) seg pred =
  let owner = seg.owner in
  let started = Engine.now owner.net.engine in
  let rec wait () =
    if not (pred seg) then begin
      wait_for_write seg;
      wait ()
    end
  in
  wait ();
  let waited = Time.diff (Engine.now owner.net.engine) started in
  match mode with
  | Poll ->
      (* The whole wait was a spin loop. *)
      owner.polled <- Time.span_add owner.polled waited;
      Engine.sleep Netparams.sisci_poll_overhead
  | Interrupt -> Engine.sleep Netparams.interrupt_latency
  | Adaptive window ->
      if Time.compare waited window <= 0 then begin
        owner.polled <- Time.span_add owner.polled waited;
        Engine.sleep Netparams.sisci_poll_overhead
      end
      else begin
        (* Spun through the window, then armed the interrupt and slept. *)
        owner.polled <- Time.span_add owner.polled window;
        Engine.sleep Netparams.interrupt_latency
      end

let polled_time t = t.polled
