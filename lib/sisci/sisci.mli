(** Simulated SISCI: the Dolphin software interface to SCI.

    SCI exposes remote memory: a node creates a {e local segment}, a peer
    connects to it and maps it, and thereafter plain CPU stores into the
    mapped window ({!pio_write}) appear in the remote segment — each store
    crossing the local PCI bus, the SCI ring and the remote PCI bus. There
    is no receive operation: the receiver {e polls} memory it owns
    ({!wait_until}).

    Two transfer engines are modelled, as on the Dolphin D310 boards used
    by the paper:
    - {b PIO}: CPU-mastered stores, low latency, bandwidth limited by the
      write-combining PCI bridge path (~88 MB/s);
    - {b DMA}: NIC-mastered, but notoriously poor on the D310 — capped at
      35 MB/s (§5.2.1), which is why Madeleine ships its DMA transmission
      module disabled.

    Writes from one node to one segment become visible in issue order
    (SCI's in-order delivery per stream). *)

type net
type t
type local_segment
type remote_segment

val make_net : Marcel.Engine.t -> Simnet.Fabric.t -> net
val attach : net -> Simnet.Node.t -> t
val node : t -> Simnet.Node.t

val create_segment : t -> segment_id:int -> size:int -> local_segment
(** Exposes [size] bytes (zero-initialised) under [(node, segment_id)].
    Raises [Invalid_argument] if the id is already used on this node. *)

val connect : t -> node_id:int -> segment_id:int -> remote_segment
(** Maps a peer's segment. Raises [Not_found] if it does not exist. *)

val segment_size : local_segment -> int
val remote_size : remote_segment -> int

val pio_write : remote_segment -> off:int -> Bytes.t -> unit
(** CPU store sequence into the mapped window. Blocks the calling thread
    while the stores drain through the local PCI bridge (posted,
    write-combined); the SCI stream then delivers to remote memory
    asynchronously and in order. Writes from one node to one segment
    become remotely visible in issue order. *)

val pio_write_sub :
  remote_segment -> off:int -> Bytes.t -> pos:int -> len:int -> unit
(** {!pio_write} from a sub-range of [data]. The internal snapshot taken
    for the asynchronous delivery is the only host copy, so callers can
    ship straight out of a reusable staging buffer with no intermediate
    frame allocation. Same simulated cost as {!pio_write} of [len]
    bytes. *)

val dma_write : remote_segment -> off:int -> Bytes.t -> unit
(** Posts a DMA descriptor; blocks while the engine pulls the data
    through the local PCI bus (35 MB/s ceiling on the D310), delivery
    completing asynchronously like {!pio_write}. *)

val dma_write_sub :
  remote_segment -> off:int -> Bytes.t -> pos:int -> len:int -> unit
(** {!dma_write} from a sub-range of [data]; see {!pio_write_sub}. *)

type region
(** A registered (pinned) interval of a user buffer; see {!register}. *)

val register : t -> Bytes.t -> pos:int -> len:int -> region
(** Pins [len] bytes of [data] starting at [pos] so the adapter's
    busmaster engine can address them directly. Charges the calling
    thread the registration cost ({!Simnet.Cost.pin}: a fixed base plus
    a per-page walk). Raises [Invalid_argument] on an empty or
    out-of-bounds range. *)

val deregister : region -> unit
(** Unpins the region, charging {!Simnet.Cost.unpin}. The region becomes
    unusable; raises [Invalid_argument] if already deregistered. *)

val region_base : region -> int
(** Absolute offset of the region's first byte in its buffer. *)

val region_length : region -> int

val expose_region : t -> segment_id:int -> region -> local_segment
(** Exposes a registered region as a connectable segment whose memory
    {e is} the underlying user buffer — remote writes land directly in
    user memory (offsets are absolute buffer offsets; pass
    {!region_base} to the writer). Free beyond the pin already charged
    by {!register}. Raises [Invalid_argument] if the region is inactive,
    belongs to another adapter, or the id is in use. *)

val retract_segment : local_segment -> unit
(** Removes a segment from its adapter's table so the id can be reused.
    Free; pending deliveries already in flight still land in the
    underlying memory. *)

val rdma_write_direct :
  remote_segment -> off:int -> region -> pos:int -> len:int -> unit
(** Zero-copy busmaster write: one descriptor moves [len] bytes from the
    pinned [region] (at absolute buffer offset [pos]) into the remote
    segment at [off], with no staging blit on either host. The engine
    reads pinned pages in long aligned bursts, so the source PCI
    crossing runs at {!Simnet.Netparams.sisci_rdma_rate_cap_mb_s}
    rather than the D310 staging engine's 35 MB/s. Because there is no
    snapshot, the call blocks until the data has landed in the remote
    segment — only then may the caller modify or unpin the source
    range. *)

val read : local_segment -> off:int -> len:int -> Bytes.t
(** CPU read of local segment memory (free: it is plain local RAM). *)

val get : local_segment -> off:int -> char
(** One-byte CPU read of local segment memory, allocation-free — for
    flag polling, where {!read}'s per-call [Bytes.sub] would dominate
    host time. Free in simulated time, like {!read}. *)

val get_int32_le : local_segment -> off:int -> int
(** Little-endian 32-bit CPU read of local segment memory,
    allocation-free (e.g. slot length headers). *)

val read_into :
  local_segment -> off:int -> len:int -> Bytes.t -> pos:int -> unit
(** Copies [len] bytes of local segment memory starting at [off] into
    [dst] at [pos] without allocating an intermediate. Free in simulated
    time; charge any modelled memcpy cost separately. *)

val write_local : local_segment -> off:int -> Bytes.t -> unit
(** CPU store into one's own segment (e.g. resetting a flag). Free. *)

val set : local_segment -> off:int -> char -> unit
(** One-byte CPU store into one's own segment, allocation-free (e.g.
    resetting a valid flag). Free in simulated time. *)

type rx_wait =
  | Poll  (** spin on the flag: fastest detection, burns the CPU *)
  | Interrupt  (** block on the NIC interrupt: frees the CPU, slow wake *)
  | Adaptive of Marcel.Time.span
      (** poll for the given window, then fall back to the interrupt —
          the adaptive mechanism the paper plans to build with Marcel
          (§7): hot streams pay polling costs, idle waits burn a bounded
          amount of CPU. *)

val wait_until :
  ?mode:rx_wait -> local_segment -> (local_segment -> bool) -> unit
(** Waits until the predicate holds; re-evaluated after every remote
    write into the segment. [mode] (default [Poll]) selects the
    detection cost on success — poll overhead, interrupt latency, or
    window-dependent — and how much CPU time the wait burns (recorded,
    see {!polled_time}). *)

val polled_time : t -> Marcel.Time.span
(** Total CPU time this adapter's threads have spent spinning in
    poll-mode waits — the quantity adaptive interrupts exist to bound. *)

val set_data_hook : local_segment -> (unit -> unit) -> unit
(** [hook] fires after every remote write into the segment (used by
    Madeleine's any-source message detection). *)
