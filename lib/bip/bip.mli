(** Simulated BIP: Basic Interface for Parallelism over Myrinet.

    Models the user-level Myrinet interface of Prylli & Tourancheau used by
    the paper (LANai 4.3 era), with its two transmission modes:

    - {b short messages} ([< 1 kB], {!Simnet.Netparams.bip_short_max}):
      stored into preallocated buffers on the receiving side with no
      receiver participation; a credit-based window bounds the number of
      in-flight short messages per connection (credits return when the
      receiver consumes a buffer).
    - {b long messages}: rendezvous — the sender blocks until the receiver
      has posted a matching receive, then the payload is DMA'd directly to
      its final location, with no intermediate copy.

    Matching is FIFO per [(source, tag)] pair, like BIP's tagged receive.
    Raw calibration targets (paper §5.2.2): 5 us one-way latency,
    126 MB/s asymptotic bandwidth. *)

type net
(** A BIP instance over one Myrinet fabric. *)

type t
(** A node endpoint. *)

val make_net : ?credits:int -> Marcel.Engine.t -> Simnet.Fabric.t -> net
(** The fabric must use Myrinet-like link parameters. [credits]
    overrides the short-message send window per connection (default
    {!Simnet.Netparams.bip_short_credits}; must be >= 1) — the
    clusterfile's network-level [credits=] key lands here. *)

val attach : net -> Simnet.Node.t -> t
(** Registers the node on the BIP network. The node must already be
    attached to the underlying fabric. Attaching a node twice is an
    error. *)

val node : t -> Simnet.Node.t
val rank : t -> int
(** Node id of this endpoint. *)

val send : t -> dst:int -> tag:int -> Bytes.t -> unit
(** Blocking send. Returns when the payload buffer may be reused: after
    local injection for short messages (credit permitting), after full
    remote delivery for long ones. Raises [Invalid_argument] if [dst] is
    unknown or equals the sender. *)

val recv : t -> src:int -> tag:int -> ?len:int -> Bytes.t -> int
(** [recv t ~src ~tag buf] blocks for the next message from [src] with
    [tag], places the payload at the start of [buf] and returns its
    length. [len] is the expected message length (defaults to
    [Bytes.length buf]); it selects the short or long receive path, so it
    must be on the same side of the 1 kB threshold as the sender's length
    — both sides of a BIP exchange know which mode they are using, as do
    Madeleine's symmetric pack/unpack sequences. Raises
    [Invalid_argument] if [buf] is too small for the message (BIP
    truncation is a programming error here, not silent). For short
    messages this pays the staging copy out of the preallocated buffer;
    long messages land directly. *)

val short_credits_available : t -> dst:int -> int
(** Remaining send window toward [dst] (for tests and flow-control
    instrumentation). *)

val probe : t -> src:int -> tag:int -> bool
(** True if a message from [src] with [tag] could be received without
    blocking: a short message is buffered, or a long-message rendezvous
    request is pending. *)

val set_data_hook : t -> (unit -> unit) -> unit
(** [hook] fires whenever new incoming data (a buffered short message or
    a rendezvous request) becomes visible at this endpoint. *)
