module Engine = Marcel.Engine
module Time = Marcel.Time
module Mailbox = Marcel.Mailbox
module Semaphore = Marcel.Semaphore
module Ivar = Marcel.Ivar
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams

type short_message = { payload : Bytes.t }

type rdv_request = {
  req_len : int;
  ready : unit Ivar.t; (* receiver posted a buffer; sender may stream *)
  target : (Bytes.t * int Ivar.t) Ivar.t; (* receiver buffer + completion *)
}

type rdv_posted = { buf : Bytes.t; completion : int Ivar.t }

type t = {
  net : net;
  endpoint_node : Node.t;
  short_queues : (int * int, short_message Mailbox.t) Hashtbl.t;
  pending_requests : (int * int, rdv_request Queue.t) Hashtbl.t;
  posted_recvs : (int * int, rdv_posted Queue.t) Hashtbl.t;
  mutable data_hooks : (unit -> unit) list;
}

and net = {
  engine : Engine.t;
  fabric : Fabric.t;
  endpoints : (int, t) Hashtbl.t;
  credits : (int * int, Semaphore.t) Hashtbl.t;
  short_window : int; (* credits per connection (Netparams default) *)
  short_streams : (int * int, Simnet.Stream.t) Hashtbl.t;
}

let make_net ?credits engine fabric =
  (match credits with
  | Some n when n < 1 -> invalid_arg "Bip.make_net: credits must be >= 1"
  | _ -> ());
  {
    engine;
    fabric;
    endpoints = Hashtbl.create 16;
    credits = Hashtbl.create 16;
    short_window =
      (match credits with Some n -> n | None -> Netparams.bip_short_credits);
    short_streams = Hashtbl.create 16;
  }

let attach net node =
  if Hashtbl.mem net.endpoints node.Node.id then
    invalid_arg "Bip.attach: node already attached";
  if not (Fabric.attached net.fabric node) then
    invalid_arg "Bip.attach: node not on the fabric";
  let t =
    {
      net;
      endpoint_node = node;
      short_queues = Hashtbl.create 16;
      pending_requests = Hashtbl.create 16;
      posted_recvs = Hashtbl.create 16;
      data_hooks = [];
    }
  in
  Hashtbl.add net.endpoints node.Node.id t;
  t

let node t = t.endpoint_node
let rank t = t.endpoint_node.Node.id
let set_data_hook t hook = t.data_hooks <- hook :: t.data_hooks
let fire_hook t = List.iter (fun h -> h ()) t.data_hooks

let find_queue table key =
  match Hashtbl.find_opt table key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add table key q;
      q

let find_mailbox t key =
  match Hashtbl.find_opt t.short_queues key with
  | Some b -> b
  | None ->
      let b = Mailbox.create () in
      Hashtbl.add t.short_queues key b;
      b

let credits net ~src ~dst =
  match Hashtbl.find_opt net.credits (src, dst) with
  | Some s -> s
  | None ->
      let s = Semaphore.create net.short_window in
      Hashtbl.add net.credits (src, dst) s;
      s

let peer net id =
  match Hashtbl.find_opt net.endpoints id with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Bip: unknown node %d" id)

(* One small control packet (rendezvous request or ready ack): NIC-level
   send plus the wire's one-way latency. *)
let control_latency net =
  Time.span_add (Fabric.link net.fabric).Netparams.wire_lat (Time.us 0.4)

(* The NIC-to-NIC path: a persistent FIFO stream per directed pair,
   shared by short messages and long-message payloads, so everything a
   NIC injects keeps Myrinet's in-order delivery regardless of size. *)
let nic_stream net ~src ~dst =
  match Hashtbl.find_opt net.short_streams (src, dst) with
  | Some st -> st
  | None ->
      let sender = peer net src and receiver = peer net dst in
      let link = Fabric.link net.fabric in
      let wire fluid = { Simnet.Pipeline.fluid; weight = 1.0; rate_cap = None; cls = 0 } in
      let st =
        Simnet.Stream.create net.engine
          ~name:(Printf.sprintf "bip.short.%d->%d" src dst)
          ~stages:
            [
              Simnet.Pipeline.stage
                ~use:(wire (Fabric.tx net.fabric sender.endpoint_node))
                ~prop:link.Netparams.wire_lat "myri-tx";
              Simnet.Pipeline.stage
                ~use:(wire (Fabric.rx net.fabric receiver.endpoint_node))
                "myri-rx";
              Simnet.Pipeline.stage
                ~use:(Simnet.Xfer.pci_use receiver.endpoint_node Simnet.Xfer.Dma)
                "dst-pci";
            ]
          ~mtu:link.Netparams.hw_mtu
      in
      Hashtbl.add net.short_streams (src, dst) st;
      st

(* Short path: sender injects locally and returns; the stream carries the
   packet to the receiver's preallocated buffer pool. *)
let send_short t ~dst ~tag payload =
  let net = t.net in
  let src = rank t in
  let receiver = peer net dst in
  Semaphore.acquire (credits net ~src ~dst);
  Engine.sleep Netparams.bip_send_overhead;
  let staged = Bytes.copy payload in
  let bytes_count = Bytes.length payload in
  Simnet.Node.pci_dma t.endpoint_node ~bytes_count;
  Simnet.Stream.push (nic_stream net ~src ~dst) ~bytes_count
    ~on_delivered:(fun () ->
      Mailbox.put (find_mailbox receiver (src, tag)) { payload = staged };
      fire_hook receiver)

(* Long path: rendezvous, then the payload streams straight into the
   receiver's posted buffer. *)
let send_long t ~dst ~tag payload =
  let net = t.net in
  let src = rank t in
  let receiver = peer net dst in
  Engine.sleep Netparams.bip_send_overhead;
  (* Request travels to the receiver. *)
  Engine.sleep (control_latency net);
  let req =
    { req_len = Bytes.length payload; ready = Ivar.create (); target = Ivar.create () }
  in
  let posted = find_queue receiver.posted_recvs (src, tag) in
  (match Queue.take_opt posted with
  | Some { buf; completion } ->
      (* Receiver was already waiting: its ready ack comes straight back. *)
      Ivar.fill req.target (buf, completion);
      Engine.at net.engine
        (Time.add (Engine.now net.engine) (control_latency net))
        (fun () -> Ivar.fill req.ready ())
  | None ->
      Queue.push req (find_queue receiver.pending_requests (src, tag));
      fire_hook receiver);
  Ivar.read req.ready;
  Engine.sleep Netparams.bip_rendezvous_overhead;
  let buf, completion = Ivar.read req.target in
  if Bytes.length buf < req.req_len then
    invalid_arg
      (Printf.sprintf "Bip.recv: posted buffer too small (%d < %d)"
         (Bytes.length buf) req.req_len);
  (* The send returns once the NIC has pulled the payload across the
     local PCI bus — the buffer is then reusable, so the data must be
     snapshotted here: later writes by the application must not reach
     the wire. Delivery continues in the NIC stream, completing the
     receiver's posted buffer in order. *)
  let snapshot = Bytes.copy payload in
  let grain = (Fabric.link net.fabric).Netparams.hw_mtu in
  let stream = nic_stream net ~src ~dst in
  let rec inject sent =
    let chunk = min grain (req.req_len - sent) in
    let last = sent + chunk >= req.req_len in
    Simnet.Node.pci_dma t.endpoint_node ~bytes_count:chunk;
    Simnet.Stream.push stream ~bytes_count:chunk
      ~on_delivered:
        (if last then fun () ->
           Bytes.blit snapshot 0 buf 0 req.req_len;
           Ivar.fill completion req.req_len
         else fun () -> ());
    if not last then inject (sent + chunk)
  in
  if req.req_len = 0 then Ivar.fill completion 0 else inject 0

let send t ~dst ~tag payload =
  if dst = rank t then invalid_arg "Bip.send: dst is self";
  ignore (peer t.net dst : t);
  if Bytes.length payload < Netparams.bip_short_max then
    send_short t ~dst ~tag payload
  else send_long t ~dst ~tag payload

let recv_short t ~src ~tag buf =
  let msg = Mailbox.take (find_mailbox t (src, tag)) in
  Engine.sleep Netparams.bip_recv_overhead;
  let len = Bytes.length msg.payload in
  if Bytes.length buf < len then
    invalid_arg
      (Printf.sprintf "Bip.recv: buffer too small (%d < %d)" (Bytes.length buf)
         len);
  (* Staging copy out of the preallocated buffer pool. *)
  Engine.sleep
    (Time.bytes_at_rate ~bytes_count:len ~mb_per_s:Netparams.bip_copy_rate_mb_s);
  Bytes.blit msg.payload 0 buf 0 len;
  (* Consuming the buffer returns one credit to the sender (piggybacked
     on regular traffic in real BIP; modelled as immediate). *)
  Semaphore.release (credits t.net ~src ~dst:(rank t));
  len

let recv_long t ~src ~tag buf =
  Engine.sleep Netparams.bip_recv_overhead;
  let completion = Ivar.create () in
  let pending = find_queue t.pending_requests (src, tag) in
  (match Queue.take_opt pending with
  | Some req ->
      Ivar.fill req.target (buf, completion);
      (* Ready ack travels back to the sender. *)
      Engine.at t.net.engine
        (Time.add (Engine.now t.net.engine) (control_latency t.net))
        (fun () -> Ivar.fill req.ready ())
  | None ->
      Queue.push { buf; completion } (find_queue t.posted_recvs (src, tag)));
  Ivar.read completion

(* BIP distinguishes the two receive paths by message size, and both sides
   of an exchange know which mode is in use (Madeleine's pack/unpack
   symmetry guarantees the receiver knows each packet's length). *)
let recv t ~src ~tag ?len buf =
  let len = Option.value len ~default:(Bytes.length buf) in
  if len < Netparams.bip_short_max then recv_short t ~src ~tag buf
  else recv_long t ~src ~tag buf

let short_credits_available t ~dst =
  Semaphore.available (credits t.net ~src:(rank t) ~dst)

let probe t ~src ~tag =
  let short_ready =
    match Hashtbl.find_opt t.short_queues (src, tag) with
    | Some box -> Mailbox.length box > 0
    | None -> false
  in
  let rdv_ready =
    match Hashtbl.find_opt t.pending_requests (src, tag) with
    | Some q -> not (Queue.is_empty q)
    | None -> false
  in
  short_ready || rdv_ready
